"""Global routing: grid graph [18] + maze routing [16] + virtual capacity [17]."""

from repro.physical.routing.grid import RoutingGrid
from repro.physical.routing.maze import maze_route
from repro.physical.routing.router import RoutingConfig, RoutingResult, route

__all__ = [
    "RoutingConfig",
    "RoutingGrid",
    "RoutingResult",
    "maze_route",
    "route",
]
