"""The routing driver (paper Sec. 3.5).

Order: "the routing order is determined by the distance from the center of
gravity of all cells to its closest pin of wires" — central (most
congested) wires route first — "if the distance is the same for more than
two wires, we will use wire weighting as the tie breaker."

Failure handling: "certain wires may fail to be routed by this routing
order.  In that case, the virtual capacity will be relaxed for rerouting
failed wires until all wires are routed."  A final allow-overflow pass
guarantees completion even under extreme congestion (reported in the
result's overflow statistics).

Two algorithms share this driver, selected by
``RoutingConfig.algorithm``:

* ``"ordered"`` (the paper's) — single-pass ordered routing with
  capacity relaxation and the never-fail overflow pass described above;
* ``"negotiated"`` — PathFinder-style negotiated-congestion rip-up and
  reroute (:mod:`repro.physical.routing.negotiated`): congestion is
  priced instead of blocked, and only the wires crossing overused edges
  are iteratively ripped up under rising present + history costs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.hardware.technology import DEFAULT_TECHNOLOGY, Technology
from repro.mapping.netlist import Netlist
from repro.observability import get_recorder
from repro.physical.layout import Placement
from repro.physical.routing.grid import BinCoord, RoutingGrid
from repro.physical.routing.kernel import (
    KERNEL_CHOICES,
    resolve_kernel,
    route_wires_kernel,
)
from repro.physical.routing.maze import MazeWorkspace, maze_route
from repro.physical.routing.negotiated import _pin_bins, negotiate_routes

#: The routing algorithms ``route`` can dispatch to.
ROUTING_ALGORITHMS = ("ordered", "negotiated")


def _default_kernel() -> str:
    """The default ``RoutingConfig.kernel``: the ``REPRO_ROUTING_KERNEL``
    environment variable (the CI matrix pins it per leg) or ``"auto"``."""
    return os.environ.get("REPRO_ROUTING_KERNEL", "auto")


@dataclass
class RoutingConfig:
    """Tuning knobs of the global router.

    ``None`` values fall back to the technology parameters (θ, capacity).

    ``algorithm`` selects the router: ``"ordered"`` is the paper's
    single-pass ordered route with capacity relaxation;
    ``"negotiated"`` is PathFinder-style negotiated-congestion rip-up
    and reroute.  The ``max_ripup_iterations`` / ``present_weight`` /
    ``present_growth`` / ``history_increment`` knobs only affect the
    negotiated algorithm; ``max_relax_rounds`` / ``relax_increment`` /
    ``overflow_penalty`` only the ordered one.

    ``kernel`` selects the maze-search implementation: ``"python"`` is
    the reference, ``"numba"`` the compiled batched kernel
    (:mod:`repro.physical.routing.kernel`, bit-identical results), and
    ``"auto"`` — the default, overridable via the
    ``REPRO_ROUTING_KERNEL`` environment variable — prefers the kernel
    and silently falls back to Python when Numba is not installed.
    """

    bin_um: Optional[float] = None
    capacity_per_bin: Optional[int] = None
    window_margin_bins: int = 8
    congestion_weight: float = 2.0
    max_relax_rounds: int = 5
    relax_increment: int = 4
    overflow_penalty: float = 10.0
    region_margin_bins: int = 1
    max_grid_bins: int = 56
    algorithm: str = "ordered"
    max_ripup_iterations: int = 16
    present_weight: float = 0.5
    present_growth: float = 1.6
    history_increment: float = 0.4
    kernel: str = field(default_factory=_default_kernel)
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.window_margin_bins < 0:
            raise ValueError("window_margin_bins must be >= 0")
        if self.max_relax_rounds < 0:
            raise ValueError("max_relax_rounds must be >= 0")
        if self.relax_increment < 1:
            raise ValueError("relax_increment must be >= 1")
        if self.congestion_weight < 0:
            raise ValueError("congestion_weight must be >= 0")
        if self.max_grid_bins < 2:
            raise ValueError("max_grid_bins must be >= 2")
        if self.algorithm not in ROUTING_ALGORITHMS:
            raise ValueError(
                f"algorithm must be one of {ROUTING_ALGORITHMS}, "
                f"got {self.algorithm!r}"
            )
        if self.max_ripup_iterations < 0:
            raise ValueError("max_ripup_iterations must be >= 0")
        if self.present_weight <= 0:
            raise ValueError("present_weight must be > 0")
        if self.present_growth < 1.0:
            raise ValueError("present_growth must be >= 1")
        if self.history_increment < 0:
            raise ValueError("history_increment must be >= 0")
        if self.kernel not in KERNEL_CHOICES:
            raise ValueError(
                f"kernel must be one of {KERNEL_CHOICES}, got {self.kernel!r}"
            )


@dataclass
class RoutedWire:
    """One wire's routing outcome."""

    wire_index: int
    path: List[BinCoord]
    length_um: float
    overflowed: bool = False


@dataclass
class RoutingResult:
    """Complete routing outcome: per-wire paths, lengths and congestion.

    ``relax_rounds`` counts capacity relaxations (ordered algorithm);
    ``ripup_iterations``/``ripups`` count negotiation rounds and
    individual wire rip-ups (negotiated algorithm).  Each is zero for
    the other algorithm.
    """

    wires: List[RoutedWire]
    grid: RoutingGrid
    relax_rounds: int
    overflow_wires: int
    algorithm: str = "ordered"
    ripup_iterations: int = 0
    ripups: int = 0

    @property
    def total_wirelength_um(self) -> float:
        """Total routed wirelength L (µm) — the Table 1 metric."""
        return float(sum(w.length_um for w in self.wires))

    @property
    def lengths(self) -> np.ndarray:
        """Per-wire routed lengths in wire-index order."""
        ordered = sorted(self.wires, key=lambda w: w.wire_index)
        return np.array([w.length_um for w in ordered])

    @property
    def horizontal_usage(self) -> np.ndarray:
        """Horizontal routing-edge usage (for congestion maps)."""
        return self.grid.horizontal_usage

    @property
    def vertical_usage(self) -> np.ndarray:
        """Vertical routing-edge usage (for congestion maps)."""
        return self.grid.vertical_usage

    def congestion_map(self) -> np.ndarray:
        """Per-bin wire counts (Fig. 10(b)/(d))."""
        return self.grid.congestion_map()


def _routing_order(
    netlist: Netlist, placement: Placement
) -> List[int]:
    """Paper routing order: gravity-center distance, wire weight tie-break.

    Fully vectorized, and computed in float64 regardless of the
    placement's dtype so the order — which golden fixtures depend on —
    is identical on every platform.
    """
    if not netlist.wires:
        return []
    sources, targets, weights = netlist.wire_endpoints()
    x = np.asarray(placement.x, dtype=np.float64)
    y = np.asarray(placement.y, dtype=np.float64)
    cx = x.mean()
    cy = y.mean()
    dist_source = np.abs(x[sources] - cx) + np.abs(y[sources] - cy)
    dist_target = np.abs(x[targets] - cx) + np.abs(y[targets] - cy)
    closest = np.minimum(dist_source, dist_target)
    # Ascending distance; ties broken by descending wire weight, then by
    # wire index (lexsort keys run last-to-first).
    order = np.lexsort(
        (np.arange(len(netlist.wires)), -weights.astype(np.float64), closest)
    )
    return [int(index) for index in order]


def route(
    netlist: Netlist,
    placement: Placement,
    technology: Technology = DEFAULT_TECHNOLOGY,
    config: Optional[RoutingConfig] = None,
) -> RoutingResult:
    """Globally route every wire of a placed netlist.

    Pins sit at cell centers.  Wires whose pins share a bin get the
    pin-to-pin Manhattan length and consume no edge capacity.
    """
    if config is None:
        config = RoutingConfig()
    if placement.num_cells != netlist.num_cells:
        raise ValueError(
            f"placement has {placement.num_cells} cells, netlist has {netlist.num_cells}"
        )
    bin_um = config.bin_um if config.bin_um is not None else technology.routing_bin_um
    capacity = (
        config.capacity_per_bin
        if config.capacity_per_bin is not None
        else technology.routing_capacity_per_bin
    )
    xmin, ymin, xmax, ymax = placement.bounding_box()
    # Coarsen θ on large dies so the grid stays tractable; capacity scales
    # with the merge factor (a wider boundary carries more wires).
    span = max(xmax - xmin, ymax - ymin, bin_um)
    if span / bin_um > config.max_grid_bins:
        scale = span / (bin_um * config.max_grid_bins)
        bin_um *= scale
        capacity = max(1, int(round(capacity * scale)))
    margin = config.region_margin_bins * bin_um
    grid = RoutingGrid(
        origin=(xmin - margin, ymin - margin),
        width=(xmax - xmin) + 2 * margin,
        height=(ymax - ymin) + 2 * margin,
        bin_um=bin_um,
        capacity=capacity,
    )
    workspace = MazeWorkspace(grid)

    recorder = get_recorder()
    order = _routing_order(netlist, placement)
    # Resolve "auto" up front: an explicit kernel="numba" without Numba
    # raises here instead of failing mid-route.
    engine = resolve_kernel(config.kernel)

    with recorder.span(
        "routing.global",
        wires=len(netlist.wires),
        bins=[grid.nx, grid.ny],
        algorithm=config.algorithm,
        kernel=engine,
    ) as span:
        if config.algorithm == "negotiated":
            result = _route_negotiated(
                netlist, placement, grid, workspace, order, config, engine
            )
        else:
            result = _route_ordered(
                netlist, placement, grid, workspace, order, config, recorder, engine
            )
        # One reporting flush per route() call — the maze inner loop only
        # touches workspace integers (null-recorder overhead contract).
        recorder.count("routing.wires_routed", len(result.wires))
        recorder.count("routing.ripup_retries", result.ripups)
        recorder.count("routing.ripup_iterations", result.ripup_iterations)
        recorder.count("routing.relax_rounds", result.relax_rounds)
        recorder.count("routing.overflow_wires", result.overflow_wires)
        recorder.count("routing.heap_pushes", workspace.heap_pushes)
        recorder.count("routing.heap_pops", workspace.heap_pops)
        recorder.count("routing.visited_bins", workspace.visited_bins)
        recorder.count("routing.maze_searches", workspace.searches)
        recorder.count("routing.kernel_batches", workspace.kernel_batches)
        recorder.count("routing.kernel_wires", workspace.kernel_wires)
        recorder.count("routing.heuristic_builds", workspace.heuristic_builds)
        recorder.count("routing.heuristic_hits", workspace.heuristic_hits)
        if recorder.enabled:
            recorder.observe_many(
                "routing.path_bins", [len(wire.path) for wire in result.wires]
            )
            recorder.gauge("routing.total_wirelength_um", result.total_wirelength_um)
        span.annotate(
            ripup_retries=result.ripups,
            relax_rounds=result.relax_rounds,
            ripup_iterations=result.ripup_iterations,
            overflow_wires=result.overflow_wires,
            heap_pushes=workspace.heap_pushes,
        )
    return result


def _route_ordered(
    netlist: Netlist,
    placement: Placement,
    grid: RoutingGrid,
    workspace: MazeWorkspace,
    order: List[int],
    config: RoutingConfig,
    recorder,
    engine: str = "python",
) -> RoutingResult:
    """The paper's ordered route: relax capacity, then never-fail overflow.

    With ``engine="numba"`` each pass — the first pass, every relax
    round, the final overflow pass — runs as one batched kernel
    invocation; commits happen between wires inside the kernel, so the
    result is bit-identical to the per-wire reference loop.
    """
    routed: Dict[int, RoutedWire] = {}
    failed: List[int] = []

    def try_route(index: int, allow_overflow: bool) -> Optional[RoutedWire]:
        start, goal, same_bin_length = _pin_bins(netlist, placement, grid, index)
        if start == goal:
            return RoutedWire(
                wire_index=index, path=[start], length_um=same_bin_length
            )
        path = maze_route(
            grid,
            start,
            goal,
            window_margin=config.window_margin_bins,
            congestion_weight=config.congestion_weight,
            allow_overflow=allow_overflow,
            overflow_penalty=config.overflow_penalty,
            workspace=workspace,
        )
        if path is None:
            return None
        grid.add_usage(path)
        overflowed = allow_overflow and _path_overflows(grid, path)
        return RoutedWire(
            wire_index=index,
            path=path,
            length_um=grid.path_length_um(path),
            overflowed=overflowed,
        )

    def route_pass(indices: Sequence[int], allow_overflow: bool) -> List[int]:
        """Route ``indices`` with the selected engine; returns failures."""
        still_failed: List[int] = []
        if engine == "numba":
            # Same-bin wires commit no usage, so resolving them
            # Python-side keeps the committed sequence the kernel sees
            # identical to the interleaved reference order.
            pending: List[int] = []
            pairs: List[Tuple[BinCoord, BinCoord]] = []
            for index in indices:
                start, goal, length = _pin_bins(netlist, placement, grid, index)
                if start == goal:
                    routed[index] = RoutedWire(
                        wire_index=index, path=[start], length_um=length
                    )
                else:
                    pending.append(index)
                    pairs.append((start, goal))
            paths, statuses = route_wires_kernel(
                grid,
                workspace,
                pairs,
                window_margin=config.window_margin_bins,
                congestion_weight=config.congestion_weight,
                allow_overflow=allow_overflow,
                overflow_penalty=config.overflow_penalty,
                flag_overflow=allow_overflow,
            )
            for index, path, status in zip(pending, paths, statuses):
                if path is None:
                    still_failed.append(index)
                else:
                    routed[index] = RoutedWire(
                        wire_index=index,
                        path=path,
                        length_um=grid.path_length_um(path),
                        overflowed=status == 2,
                    )
        else:
            for index in indices:
                outcome = try_route(index, allow_overflow)
                if outcome is None:
                    still_failed.append(index)
                else:
                    routed[index] = outcome
        return still_failed

    failed = route_pass(order, allow_overflow=False)
    first_pass_failures = len(failed)

    relax_rounds = 0
    ripup_retries = 0
    while failed and relax_rounds < config.max_relax_rounds:
        relax_rounds += 1
        grid.relax_capacity(config.relax_increment)
        recorder.event("routing.relax_round", round=relax_rounds, failed=len(failed))
        ripup_retries += len(failed)
        failed = route_pass(failed, allow_overflow=False)

    # Never-fail final pass: overflow allowed, heavily penalized.
    overflow_wires = 0
    if failed:
        ripup_retries += len(failed)
        remaining = route_pass(failed, allow_overflow=True)
        if remaining:  # pragma: no cover - connected grid always routes
            raise RuntimeError(f"wire {remaining[0]} could not be routed at all")
        for index in failed:
            if routed[index].overflowed:
                overflow_wires += 1
                recorder.event("routing.overflow", wire=index)

    recorder.count("routing.first_pass_failures", first_pass_failures)
    return RoutingResult(
        wires=[routed[i] for i in sorted(routed)],
        grid=grid,
        relax_rounds=relax_rounds,
        overflow_wires=overflow_wires,
        algorithm="ordered",
        ripups=ripup_retries,
    )


def _route_negotiated(
    netlist: Netlist,
    placement: Placement,
    grid: RoutingGrid,
    workspace: MazeWorkspace,
    order: List[int],
    config: RoutingConfig,
    engine: str = "python",
) -> RoutingResult:
    """PathFinder-style negotiated congestion, wrapped as a RoutingResult."""
    outcome = negotiate_routes(
        netlist, placement, grid, workspace, order, config, engine=engine
    )
    wires: List[RoutedWire] = []
    overflow_wires = 0
    for index in sorted(outcome.paths):
        path = outcome.paths[index]
        overflowed = len(path) > 1 and _path_overflows(grid, path)
        if overflowed:
            overflow_wires += 1
        wires.append(
            RoutedWire(
                wire_index=index,
                path=path,
                length_um=outcome.lengths[index],
                overflowed=overflowed,
            )
        )
    return RoutingResult(
        wires=wires,
        grid=grid,
        relax_rounds=0,
        overflow_wires=overflow_wires,
        algorithm="negotiated",
        ripup_iterations=outcome.iterations,
        ripups=outcome.ripups,
    )


def _path_overflows(grid: RoutingGrid, path: List[BinCoord]) -> bool:
    """True when any edge on ``path`` exceeds its base capacity."""
    for a, b in zip(path, path[1:]):
        edge = grid.edge_between(a, b)
        if grid.edge_usage(edge) > grid.base_capacity:
            return True
    return False
