"""The routing driver (paper Sec. 3.5).

Order: "the routing order is determined by the distance from the center of
gravity of all cells to its closest pin of wires" — central (most
congested) wires route first — "if the distance is the same for more than
two wires, we will use wire weighting as the tie breaker."

Failure handling: "certain wires may fail to be routed by this routing
order.  In that case, the virtual capacity will be relaxed for rerouting
failed wires until all wires are routed."  A final allow-overflow pass
guarantees completion even under extreme congestion (reported in the
result's overflow statistics).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.hardware.technology import DEFAULT_TECHNOLOGY, Technology
from repro.mapping.netlist import Netlist
from repro.observability import get_recorder
from repro.physical.layout import Placement
from repro.physical.routing.grid import BinCoord, RoutingGrid
from repro.physical.routing.maze import MazeWorkspace, maze_route


@dataclass
class RoutingConfig:
    """Tuning knobs of the global router.

    ``None`` values fall back to the technology parameters (θ, capacity).
    """

    bin_um: Optional[float] = None
    capacity_per_bin: Optional[int] = None
    window_margin_bins: int = 8
    congestion_weight: float = 2.0
    max_relax_rounds: int = 5
    relax_increment: int = 4
    overflow_penalty: float = 10.0
    region_margin_bins: int = 1
    max_grid_bins: int = 56
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.window_margin_bins < 0:
            raise ValueError("window_margin_bins must be >= 0")
        if self.max_relax_rounds < 0:
            raise ValueError("max_relax_rounds must be >= 0")
        if self.relax_increment < 1:
            raise ValueError("relax_increment must be >= 1")
        if self.congestion_weight < 0:
            raise ValueError("congestion_weight must be >= 0")
        if self.max_grid_bins < 2:
            raise ValueError("max_grid_bins must be >= 2")


@dataclass
class RoutedWire:
    """One wire's routing outcome."""

    wire_index: int
    path: List[BinCoord]
    length_um: float
    overflowed: bool = False


@dataclass
class RoutingResult:
    """Complete routing outcome: per-wire paths, lengths and congestion."""

    wires: List[RoutedWire]
    grid: RoutingGrid
    relax_rounds: int
    overflow_wires: int

    @property
    def total_wirelength_um(self) -> float:
        """Total routed wirelength L (µm) — the Table 1 metric."""
        return float(sum(w.length_um for w in self.wires))

    @property
    def lengths(self) -> np.ndarray:
        """Per-wire routed lengths in wire-index order."""
        ordered = sorted(self.wires, key=lambda w: w.wire_index)
        return np.array([w.length_um for w in ordered])

    @property
    def horizontal_usage(self) -> np.ndarray:
        """Horizontal routing-edge usage (for congestion maps)."""
        return self.grid.horizontal_usage

    @property
    def vertical_usage(self) -> np.ndarray:
        """Vertical routing-edge usage (for congestion maps)."""
        return self.grid.vertical_usage

    def congestion_map(self) -> np.ndarray:
        """Per-bin wire counts (Fig. 10(b)/(d))."""
        return self.grid.congestion_map()


def _routing_order(
    netlist: Netlist, placement: Placement
) -> List[int]:
    """Paper routing order: gravity-center distance, wire weight tie-break."""
    cx = float(np.mean(placement.x))
    cy = float(np.mean(placement.y))
    keys = []
    for index, wire in enumerate(netlist.wires):
        dist_source = abs(placement.x[wire.source] - cx) + abs(placement.y[wire.source] - cy)
        dist_target = abs(placement.x[wire.target] - cx) + abs(placement.y[wire.target] - cy)
        closest = min(dist_source, dist_target)
        # Ascending distance; ties broken by descending wire weight.
        keys.append((closest, -wire.weight, index))
    keys.sort()
    return [index for _, _, index in keys]


def route(
    netlist: Netlist,
    placement: Placement,
    technology: Technology = DEFAULT_TECHNOLOGY,
    config: Optional[RoutingConfig] = None,
) -> RoutingResult:
    """Globally route every wire of a placed netlist.

    Pins sit at cell centers.  Wires whose pins share a bin get the
    pin-to-pin Manhattan length and consume no edge capacity.
    """
    if config is None:
        config = RoutingConfig()
    if placement.num_cells != netlist.num_cells:
        raise ValueError(
            f"placement has {placement.num_cells} cells, netlist has {netlist.num_cells}"
        )
    bin_um = config.bin_um if config.bin_um is not None else technology.routing_bin_um
    capacity = (
        config.capacity_per_bin
        if config.capacity_per_bin is not None
        else technology.routing_capacity_per_bin
    )
    xmin, ymin, xmax, ymax = placement.bounding_box()
    # Coarsen θ on large dies so the grid stays tractable; capacity scales
    # with the merge factor (a wider boundary carries more wires).
    span = max(xmax - xmin, ymax - ymin, bin_um)
    if span / bin_um > config.max_grid_bins:
        scale = span / (bin_um * config.max_grid_bins)
        bin_um *= scale
        capacity = max(1, int(round(capacity * scale)))
    margin = config.region_margin_bins * bin_um
    grid = RoutingGrid(
        origin=(xmin - margin, ymin - margin),
        width=(xmax - xmin) + 2 * margin,
        height=(ymax - ymin) + 2 * margin,
        bin_um=bin_um,
        capacity=capacity,
    )
    workspace = MazeWorkspace(grid)

    recorder = get_recorder()
    order = _routing_order(netlist, placement)
    routed: Dict[int, RoutedWire] = {}
    failed: List[int] = []

    def try_route(index: int, allow_overflow: bool) -> Optional[RoutedWire]:
        wire = netlist.wires[index]
        sx, sy = placement.x[wire.source], placement.y[wire.source]
        tx, ty = placement.x[wire.target], placement.y[wire.target]
        start = grid.bin_of(sx, sy)
        goal = grid.bin_of(tx, ty)
        if start == goal:
            length = abs(sx - tx) + abs(sy - ty)
            return RoutedWire(wire_index=index, path=[start], length_um=float(length))
        path = maze_route(
            grid,
            start,
            goal,
            window_margin=config.window_margin_bins,
            congestion_weight=config.congestion_weight,
            allow_overflow=allow_overflow,
            overflow_penalty=config.overflow_penalty,
            workspace=workspace,
        )
        if path is None:
            return None
        grid.add_usage(path)
        overflowed = allow_overflow and _path_overflows(grid, path)
        return RoutedWire(
            wire_index=index,
            path=path,
            length_um=grid.path_length_um(path),
            overflowed=overflowed,
        )

    with recorder.span(
        "routing.global", wires=len(netlist.wires), bins=[grid.nx, grid.ny]
    ) as span:
        for index in order:
            outcome = try_route(index, allow_overflow=False)
            if outcome is None:
                failed.append(index)
            else:
                routed[index] = outcome
        first_pass_failures = len(failed)

        relax_rounds = 0
        ripup_retries = 0
        while failed and relax_rounds < config.max_relax_rounds:
            relax_rounds += 1
            grid.relax_capacity(config.relax_increment)
            recorder.event("routing.relax_round", round=relax_rounds, failed=len(failed))
            still_failed: List[int] = []
            for index in failed:
                ripup_retries += 1
                outcome = try_route(index, allow_overflow=False)
                if outcome is None:
                    still_failed.append(index)
                else:
                    routed[index] = outcome
            failed = still_failed

        # Never-fail final pass: overflow allowed, heavily penalized.
        overflow_wires = 0
        for index in failed:
            ripup_retries += 1
            outcome = try_route(index, allow_overflow=True)
            if outcome is None:  # pragma: no cover - connected grid always routes
                raise RuntimeError(f"wire {index} could not be routed at all")
            routed[index] = outcome
            if outcome.overflowed:
                overflow_wires += 1
                recorder.event("routing.overflow", wire=index)

        result = RoutingResult(
            wires=[routed[i] for i in sorted(routed)],
            grid=grid,
            relax_rounds=relax_rounds,
            overflow_wires=overflow_wires,
        )
        # One reporting flush per route() call — the maze inner loop only
        # touches workspace integers (null-recorder overhead contract).
        recorder.count("routing.wires_routed", len(result.wires))
        recorder.count("routing.first_pass_failures", first_pass_failures)
        recorder.count("routing.ripup_retries", ripup_retries)
        recorder.count("routing.relax_rounds", relax_rounds)
        recorder.count("routing.overflow_wires", overflow_wires)
        recorder.count("routing.heap_pushes", workspace.heap_pushes)
        recorder.count("routing.heap_pops", workspace.heap_pops)
        recorder.count("routing.visited_bins", workspace.visited_bins)
        recorder.count("routing.maze_searches", workspace.searches)
        if recorder.enabled:
            recorder.observe_many(
                "routing.path_bins", [len(wire.path) for wire in result.wires]
            )
            recorder.gauge("routing.total_wirelength_um", result.total_wirelength_um)
        span.annotate(
            ripup_retries=ripup_retries,
            relax_rounds=relax_rounds,
            overflow_wires=overflow_wires,
            heap_pushes=workspace.heap_pushes,
        )
    return result


def _path_overflows(grid: RoutingGrid, path: List[BinCoord]) -> bool:
    """True when any edge on ``path`` exceeds its base capacity."""
    for a, b in zip(path, path[1:]):
        edge = grid.edge_between(a, b)
        if grid.edge_usage(edge) > grid.base_capacity:
            return True
    return False
