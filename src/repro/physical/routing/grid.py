"""The routing grid graph (paper Sec. 3.5, after [18]).

The chip region is tessellated into square bins of user-defined width θ;
routing-graph nodes are bins and edges connect 4-neighbours.  Each edge has
a (virtual) capacity — the estimated number of wires it accommodates [17] —
and a usage counter that the maze router updates as wires commit.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Tuple

import numpy as np

BinCoord = Tuple[int, int]


class RoutingGrid:
    """A congestion-tracked grid graph over a rectangular region.

    Parameters
    ----------
    origin:
        ``(x0, y0)`` lower-left corner of the routed region (µm).
    width / height:
        Region extent (µm).
    bin_um:
        Bin width θ.
    capacity:
        Base edge capacity (wires per bin boundary).
    """

    def __init__(
        self,
        origin: Tuple[float, float],
        width: float,
        height: float,
        bin_um: float,
        capacity: int,
    ) -> None:
        if bin_um <= 0:
            raise ValueError(f"bin_um must be > 0, got {bin_um}")
        if width < 0 or height < 0:
            raise ValueError("region extent must be >= 0")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.origin = (float(origin[0]), float(origin[1]))
        self.bin_um = float(bin_um)
        self.nx = max(1, int(math.ceil(width / bin_um)))
        self.ny = max(1, int(math.ceil(height / bin_um)))
        self.base_capacity = int(capacity)
        # horizontal edges: (bx, by) -> (bx+1, by); vertical: (bx, by) -> (bx, by+1)
        self.horizontal_capacity = np.full((max(self.nx - 1, 0), self.ny), capacity, dtype=int)
        self.vertical_capacity = np.full((self.nx, max(self.ny - 1, 0)), capacity, dtype=int)
        self.horizontal_usage = np.zeros_like(self.horizontal_capacity)
        self.vertical_usage = np.zeros_like(self.vertical_capacity)

    # ------------------------------------------------------------------
    def bin_of(self, x: float, y: float) -> BinCoord:
        """Bin containing point ``(x, y)`` (clamped to the grid)."""
        bx = int((x - self.origin[0]) / self.bin_um)
        by = int((y - self.origin[1]) / self.bin_um)
        return (min(max(bx, 0), self.nx - 1), min(max(by, 0), self.ny - 1))

    def bin_center(self, b: BinCoord) -> Tuple[float, float]:
        """Center coordinates of bin ``b`` in µm."""
        return (
            self.origin[0] + (b[0] + 0.5) * self.bin_um,
            self.origin[1] + (b[1] + 0.5) * self.bin_um,
        )

    # ------------------------------------------------------------------
    # Edge bookkeeping — edges are identified by (kind, ex, ey) with kind
    # 'h' (between (ex, ey) and (ex+1, ey)) or 'v' ((ex, ey) to (ex, ey+1)).
    # ------------------------------------------------------------------
    def edge_between(self, a: BinCoord, b: BinCoord) -> Tuple[str, int, int]:
        """Identify the edge joining two adjacent bins."""
        (ax, ay), (bx, by) = a, b
        if ax == bx and abs(ay - by) == 1:
            return ("v", ax, min(ay, by))
        if ay == by and abs(ax - bx) == 1:
            return ("h", min(ax, bx), ay)
        raise ValueError(f"bins {a} and {b} are not adjacent")

    def edge_usage(self, edge: Tuple[str, int, int]) -> int:
        """Current usage of an edge."""
        kind, ex, ey = edge
        if kind == "h":
            return int(self.horizontal_usage[ex, ey])
        return int(self.vertical_usage[ex, ey])

    def edge_capacity(self, edge: Tuple[str, int, int]) -> int:
        """Current (virtual) capacity of an edge."""
        kind, ex, ey = edge
        if kind == "h":
            return int(self.horizontal_capacity[ex, ey])
        return int(self.vertical_capacity[ex, ey])

    def add_usage(self, path: Iterable[BinCoord], amount: int = 1) -> None:
        """Commit (or with negative ``amount``, rip up) a path's edge usage."""
        path = list(path)
        for a, b in zip(path, path[1:]):
            kind, ex, ey = self.edge_between(a, b)
            if kind == "h":
                self.horizontal_usage[ex, ey] += amount
            else:
                self.vertical_usage[ex, ey] += amount

    def relax_capacity(self, increment: int) -> None:
        """Raise every edge's virtual capacity (the rerouting relaxation of [17])."""
        if increment < 1:
            raise ValueError(f"increment must be >= 1, got {increment}")
        self.horizontal_capacity += increment
        self.vertical_capacity += increment

    # ------------------------------------------------------------------
    def path_length_um(self, path: List[BinCoord]) -> float:
        """Length of a bin path: edges × θ."""
        return max(len(path) - 1, 0) * self.bin_um

    def overflowed_edges(self) -> int:
        """Number of edges whose usage exceeds the *base* capacity."""
        h_over = int(np.count_nonzero(self.horizontal_usage > self.base_capacity))
        v_over = int(np.count_nonzero(self.vertical_usage > self.base_capacity))
        return h_over + v_over

    def max_congestion(self) -> float:
        """Peak usage/base-capacity ratio over all edges."""
        values = []
        if self.horizontal_usage.size:
            values.append(float(self.horizontal_usage.max()))
        if self.vertical_usage.size:
            values.append(float(self.vertical_usage.max()))
        if not values:
            return 0.0
        return max(values) / float(self.base_capacity)

    def congestion_map(self) -> np.ndarray:
        """Per-bin total wire count (the Fig. 10(b)/(d) heat map)."""
        total = np.zeros((self.nx, self.ny))
        if self.horizontal_usage.size:
            total[:-1, :] += self.horizontal_usage
            total[1:, :] += self.horizontal_usage
        if self.vertical_usage.size:
            total[:, :-1] += self.vertical_usage
            total[:, 1:] += self.vertical_usage
        return total
