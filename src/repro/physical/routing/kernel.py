"""Native-speed maze-routing kernel (the ROADMAP "routing hot path" item).

The windowed A* of :mod:`repro.physical.routing.maze` dominates flow wall
time at scale (BENCH_routing: heap pops/pushes and visited bins), and the
negotiated router roughly doubles searches through rip-up retries.  This
module rewrites that inner loop as a batched kernel over the existing
:class:`~repro.physical.routing.maze.MazeWorkspace` float64 arrays:

* flat int32 node indexing into preallocated binary-heap arrays
  (``heap_f``/``heap_n``) instead of ``heapq`` tuples,
* fused cost + history + present evaluation inside the expansion (no
  per-neighbour Python/numpy scalar reads),
* a **batched multi-wire mode**: all independent searches of one routing
  pass (the ordered first pass, a relax round, or one rip-up iteration of
  the negotiated router) run in a *single* kernel invocation, with path
  commits applied between wires inside the kernel so sequential semantics
  are preserved exactly.

When Numba is importable the kernel is ``njit``-compiled (that is the
``kernel="numba"`` / ``kernel="auto"`` path of
:class:`~repro.physical.routing.router.RoutingConfig`); Numba stays an
**optional** dependency — without it ``"auto"`` falls back to the pure
Python reference implementation and ``"numba"`` raises
:class:`KernelUnavailableError`.

Parity contract (DESIGN.md "Routing kernel parity")
---------------------------------------------------
The kernel must produce **bit-identical** paths, edge usage, counters and
wirelength to the reference on every input.  Two properties make that
achievable:

1. every cost is computed in float64 with the *same expression order* as
   the reference (IEEE 754 makes the results bit-equal), and
2. the manual binary heap replicates CPython's ``heapq`` sift algorithms
   (``_siftdown``/``_siftup``) with the exact ``(priority, node)``
   lexicographic comparison, so the pop order — which decides every
   tie-break — matches tuple-heap behaviour exactly.

The differential suite ``tests/physical/test_kernel_parity.py`` enforces
the contract on the paper testbenches and on hypothesis-generated grids;
:func:`interpreted_kernel` lets those tests drive the *same* kernel code
uncompiled, so the contract is checked even where Numba is absent.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.physical.routing.grid import BinCoord, RoutingGrid

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.physical.routing.maze import MazeWorkspace

__all__ = [
    "KERNEL_CHOICES",
    "KernelUnavailableError",
    "NUMBA_AVAILABLE",
    "interpreted_kernel",
    "kernel_available",
    "resolve_kernel",
    "route_wires_kernel",
]

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - the common case in minimal installs
    _numba = None
    NUMBA_AVAILABLE = False

#: Valid values of ``RoutingConfig.kernel`` / the ``--kernel`` flag.
KERNEL_CHOICES = ("auto", "numba", "python")

#: Wire status codes returned by the batch kernel.
_STATUS_FAILED = 0
_STATUS_ROUTED = 1
_STATUS_OVERFLOWED = 2

#: When True (tests only), dispatch runs the kernel uncompiled.
_FORCE_INTERPRETED = False


class KernelUnavailableError(RuntimeError):
    """``kernel="numba"`` was requested but Numba is not installed."""


def _make_kernels(jit):
    """Build the kernel call graph under ``jit`` (njit or identity).

    One factory produces both the compiled and the interpreted variant
    from the *same* source, so the parity tests exercise exactly the
    code that ships compiled.
    """

    @jit
    def _heap_push(heap_f, heap_n, size, f, node):
        # heapq.heappush: append, then _siftdown(heap, 0, len(heap)-1).
        # Comparison is the (f, node) tuple order: f first, node breaks
        # ties — identical to the reference's (priority, flat) tuples.
        pos = size
        while pos > 0:
            parent = (pos - 1) >> 1
            pf = heap_f[parent]
            pn = heap_n[parent]
            if f < pf or (f == pf and node < pn):
                heap_f[pos] = pf
                heap_n[pos] = pn
                pos = parent
            else:
                break
        heap_f[pos] = f
        heap_n[pos] = node
        return size + 1

    @jit
    def _heap_pop(heap_f, heap_n, size):
        # heapq.heappop: take the last element, place it at the root and
        # _siftup (move the smaller child up until a leaf, then
        # _siftdown back) — replicated exactly so equal-priority pops
        # come out in the same order as the tuple heap.
        top_f = heap_f[0]
        top_n = heap_n[0]
        size -= 1
        last_f = heap_f[size]
        last_n = heap_n[size]
        if size > 0:
            pos = 0
            child = 1
            while child < size:
                right = child + 1
                cf = heap_f[child]
                cn = heap_n[child]
                if right < size:
                    rf = heap_f[right]
                    rn = heap_n[right]
                    if not (cf < rf or (cf == rf and cn < rn)):
                        child = right
                        cf = rf
                        cn = rn
                heap_f[pos] = cf
                heap_n[pos] = cn
                pos = child
                child = 2 * pos + 1
            while pos > 0:
                parent = (pos - 1) >> 1
                pf = heap_f[parent]
                pn = heap_n[parent]
                if last_f < pf or (last_f == pf and last_n < pn):
                    heap_f[pos] = pf
                    heap_n[pos] = pn
                    pos = parent
                else:
                    break
            heap_f[pos] = last_f
            heap_n[pos] = last_n
        return top_f, top_n, size

    @jit
    def _search(
        start_flat, goal_flat, gx, gy,
        lo_x, hi_x, lo_y, hi_y,
        ny, theta,
        congestion_weight, allow_overflow, overflow_penalty,
        present_weight, negotiated,
        h_usage, v_usage, h_capacity, v_capacity,
        h_history, v_history,
        g_score, parent_arr, stamp, closed,
        epoch,
        heap_f, heap_n,
        stats,
    ):
        # One windowed A* — the kernel twin of maze._a_star.  Every cost
        # expression mirrors the reference order exactly (parity
        # contract); stats[0..2] accumulate pushes/pops/visited.
        g_score[start_flat] = 0.0
        stamp[start_flat] = epoch
        parent_arr[start_flat] = -1
        pushes = 1
        pops = 0
        visited = 0
        sx = start_flat // ny
        sy = start_flat % ny
        heap_f[0] = (abs(sx - gx) + abs(sy - gy)) * theta
        heap_n[0] = start_flat
        heap_size = 1
        found = False
        while heap_size > 0:
            f, current, heap_size = _heap_pop(heap_f, heap_n, heap_size)
            current = np.int64(current)
            pops += 1
            if current == goal_flat:
                found = True
                break
            if closed[current] == epoch:
                continue
            closed[current] = epoch
            visited += 1
            cx = current // ny
            cy = current % ny
            current_g = g_score[current]
            for k in range(4):
                if k == 0:
                    nbx = cx + 1
                    nby = cy
                elif k == 1:
                    nbx = cx - 1
                    nby = cy
                elif k == 2:
                    nbx = cx
                    nby = cy + 1
                else:
                    nbx = cx
                    nby = cy - 1
                if nbx < lo_x or nbx > hi_x or nby < lo_y or nby > hi_y:
                    continue
                neighbor = nbx * ny + nby
                if closed[neighbor] == epoch:
                    continue
                if k < 2:
                    ex = cx if k == 0 else nbx
                    usage = h_usage[ex, cy]
                    capacity = h_capacity[ex, cy]
                else:
                    ey = cy if k == 2 else nby
                    usage = v_usage[cx, ey]
                    capacity = v_capacity[cx, ey]
                if negotiated:
                    if k < 2:
                        ex = cx if k == 0 else nbx
                        history = h_history[ex, cy]
                    else:
                        ey = cy if k == 2 else nby
                        history = v_history[cx, ey]
                    overuse = usage + 1 - capacity
                    step = theta * (1.0 + history)
                    if overuse > 0:
                        step = step * (1.0 + present_weight * overuse)
                elif usage >= capacity:
                    if not allow_overflow:
                        continue
                    step = theta * (1.0 + congestion_weight) * overflow_penalty
                else:
                    step = theta * (1.0 + congestion_weight * (usage / capacity))
                tentative = current_g + step
                if stamp[neighbor] != epoch or tentative < g_score[neighbor]:
                    g_score[neighbor] = tentative
                    stamp[neighbor] = epoch
                    parent_arr[neighbor] = current
                    heuristic = (abs(nbx - gx) + abs(nby - gy)) * theta
                    heap_size = _heap_push(
                        heap_f, heap_n, heap_size, tentative + heuristic, neighbor
                    )
                    pushes += 1
        stats[0] += pushes
        stats[1] += pops
        stats[2] += visited
        return found

    @jit
    def _batch(
        starts, goals,
        nx, ny,
        window_margin,
        theta, congestion_weight,
        allow_overflow, overflow_penalty,
        present_weight, negotiated,
        base_capacity, flag_overflow,
        h_usage, v_usage, h_capacity, v_capacity,
        h_history, v_history,
        g_score, parent_arr, stamp, closed,
        epoch,
        heap_f, heap_n,
        out, offsets, status, stats,
    ):
        # Route a whole pass of wires in one invocation.  Each wire runs
        # the same window-then-full-grid retry as maze.maze_route, and a
        # successful path commits its edge usage *before* the next wire
        # searches — exactly the sequential reference semantics.
        total = 0
        n_wires = starts.shape[0]
        max_margin = nx if nx > ny else ny
        for w in range(n_wires):
            offsets[w] = total
            s = starts[w]
            g = goals[w]
            sx = s // ny
            sy = s % ny
            gx = g // ny
            gy = g % ny
            lo_x = min(sx, gx) - window_margin
            if lo_x < 0:
                lo_x = 0
            hi_x = max(sx, gx) + window_margin
            if hi_x > nx - 1:
                hi_x = nx - 1
            lo_y = min(sy, gy) - window_margin
            if lo_y < 0:
                lo_y = 0
            hi_y = max(sy, gy) + window_margin
            if hi_y > ny - 1:
                hi_y = ny - 1
            epoch += 1
            stats[3] += 1
            found = _search(
                s, g, gx, gy, lo_x, hi_x, lo_y, hi_y, ny, theta,
                congestion_weight, allow_overflow, overflow_penalty,
                present_weight, negotiated,
                h_usage, v_usage, h_capacity, v_capacity,
                h_history, v_history,
                g_score, parent_arr, stamp, closed,
                epoch, heap_f, heap_n, stats,
            )
            if not found and window_margin < max_margin:
                # Window too tight — retry on the full grid, as the
                # reference maze_route does.
                epoch += 1
                stats[3] += 1
                found = _search(
                    s, g, gx, gy, 0, nx - 1, 0, ny - 1, ny, theta,
                    congestion_weight, allow_overflow, overflow_penalty,
                    present_weight, negotiated,
                    h_usage, v_usage, h_capacity, v_capacity,
                    h_history, v_history,
                    g_score, parent_arr, stamp, closed,
                    epoch, heap_f, heap_n, stats,
                )
            if not found:
                status[w] = 0
                continue
            plen = 1
            node = g
            while parent_arr[node] != -1:
                node = parent_arr[node]
                plen += 1
            if total + plen > out.shape[0]:
                new_cap = out.shape[0] * 2
                while new_cap < total + plen:
                    new_cap *= 2
                grown = np.empty(new_cap, np.int32)
                grown[: total] = out[: total]
                out = grown
            idx = total + plen - 1
            node = g
            out[idx] = node
            while parent_arr[node] != -1:
                node = parent_arr[node]
                idx -= 1
                out[idx] = node
            overflowed = False
            for i in range(total, total + plen - 1):
                a = out[i]
                b = out[i + 1]
                ax = a // ny
                ay = a % ny
                bx = b // ny
                by = b % ny
                if ay == by:
                    ex = ax if ax < bx else bx
                    h_usage[ex, ay] += 1
                    if flag_overflow and h_usage[ex, ay] > base_capacity:
                        overflowed = True
                else:
                    ey = ay if ay < by else by
                    v_usage[ax, ey] += 1
                    if flag_overflow and v_usage[ax, ey] > base_capacity:
                        overflowed = True
            total += plen
            status[w] = 2 if overflowed else 1
        offsets[n_wires] = total
        stats[4] = epoch
        return out

    return _batch


def _identity_jit(fn):
    return fn


#: The interpreted kernel — always available; the parity tests run it
#: where Numba is absent, and it backs :func:`interpreted_kernel`.
_BATCH_INTERPRETED = _make_kernels(_identity_jit)

#: The compiled kernel (lazily None without numba).
if NUMBA_AVAILABLE:  # pragma: no cover - requires a numba install
    _BATCH_COMPILED = _make_kernels(_numba.njit(cache=False, nogil=True))
else:
    _BATCH_COMPILED = None


def kernel_available() -> bool:
    """True when the ``"numba"`` kernel can run (compiled or forced)."""
    return NUMBA_AVAILABLE or _FORCE_INTERPRETED


def resolve_kernel(choice: str) -> str:
    """Resolve a ``RoutingConfig.kernel`` value to ``"numba"``/``"python"``.

    ``"auto"`` prefers the compiled kernel and silently falls back to the
    Python reference when Numba is absent; an explicit ``"numba"``
    without Numba raises :class:`KernelUnavailableError` instead of
    silently degrading.
    """
    if choice not in KERNEL_CHOICES:
        raise ValueError(
            f"kernel must be one of {KERNEL_CHOICES}, got {choice!r}"
        )
    if choice == "auto":
        return "numba" if kernel_available() else "python"
    if choice == "numba" and not kernel_available():
        raise KernelUnavailableError(
            "RoutingConfig.kernel='numba' requires the optional numba "
            "dependency (pip install numba); use kernel='auto' for a "
            "silent fallback to the Python reference path"
        )
    return choice


@contextmanager
def interpreted_kernel() -> Iterator[None]:
    """Force the kernel to run uncompiled (differential tests only).

    Inside the context ``kernel_available()`` is True even without
    Numba, so ``kernel="numba"`` routes through the *interpreted* kernel
    — the same source the jit compiles — letting the parity suite check
    the contract on minimal installs.
    """
    global _FORCE_INTERPRETED
    previous = _FORCE_INTERPRETED
    _FORCE_INTERPRETED = True
    try:
        yield
    finally:
        _FORCE_INTERPRETED = previous


def _active_batch():
    if _BATCH_COMPILED is not None and not _FORCE_INTERPRETED:
        return _BATCH_COMPILED
    return _BATCH_INTERPRETED


def route_wires_kernel(
    grid: RoutingGrid,
    workspace: "MazeWorkspace",
    pairs: Sequence[Tuple[BinCoord, BinCoord]],
    *,
    window_margin: int,
    congestion_weight: float,
    allow_overflow: bool = False,
    overflow_penalty: float = 10.0,
    present_weight: Optional[float] = None,
    flag_overflow: bool = False,
) -> Tuple[List[Optional[List[BinCoord]]], List[int]]:
    """Route ``pairs`` of (start, goal) bins in one kernel invocation.

    Wires run sequentially inside the kernel — each successful path
    commits its edge usage on ``grid`` before the next wire searches —
    so the batch is bit-identical to calling
    :func:`~repro.physical.routing.maze.maze_route` +
    ``grid.add_usage`` per wire.  Returns per-wire paths (``None`` for
    unroutable wires, possible only in the blocking ordered mode) and
    status codes (``2`` marks a path that exceeded the base capacity,
    checked edge-by-edge at commit time when ``flag_overflow``).

    Search statistics, the epoch counter and one ``kernel_batches``
    tick are flushed onto ``workspace``.
    """
    if window_margin < 0:
        raise ValueError(f"window_margin must be >= 0, got {window_margin}")
    if not pairs:
        return [], []
    nx, ny = grid.nx, grid.ny
    size = nx * ny
    starts = np.empty(len(pairs), dtype=np.int64)
    goals = np.empty(len(pairs), dtype=np.int64)
    for i, (start, goal) in enumerate(pairs):
        starts[i] = start[0] * ny + start[1]
        goals[i] = goal[0] * ny + goal[1]
    negotiated = present_weight is not None
    if negotiated:
        h_history, v_history = workspace.ensure_history()
        present = float(present_weight)
    else:
        h_history = v_history = _DUMMY_HISTORY
        present = -1.0
    heap_f, heap_n = workspace.ensure_heap(4 * size + 8)
    out = workspace.ensure_path_buffer(max(1024, 4 * size))
    offsets = np.zeros(len(pairs) + 1, dtype=np.int64)
    status = np.zeros(len(pairs), dtype=np.int64)
    stats = np.zeros(5, dtype=np.int64)
    out = _active_batch()(
        starts, goals,
        nx, ny,
        int(window_margin),
        float(grid.bin_um), float(congestion_weight),
        bool(allow_overflow), float(overflow_penalty),
        present, negotiated,
        int(grid.base_capacity), bool(flag_overflow),
        grid.horizontal_usage, grid.vertical_usage,
        grid.horizontal_capacity, grid.vertical_capacity,
        h_history, v_history,
        workspace.g_score, workspace.parent, workspace.stamp,
        workspace.closed,
        workspace.epoch,
        heap_f, heap_n,
        out, offsets, status, stats,
    )
    workspace.path_out = out  # keep any growth for the next batch
    workspace.heap_pushes += int(stats[0])
    workspace.heap_pops += int(stats[1])
    workspace.visited_bins += int(stats[2])
    workspace.searches += int(stats[3])
    workspace.epoch = int(stats[4])
    workspace.kernel_batches += 1
    workspace.kernel_wires += len(pairs)
    paths: List[Optional[List[BinCoord]]] = []
    for w in range(len(pairs)):
        if status[w] == _STATUS_FAILED:
            paths.append(None)
            continue
        lo, hi = int(offsets[w]), int(offsets[w + 1])
        paths.append([(int(f) // ny, int(f) % ny) for f in out[lo:hi]])
    return paths, [int(s) for s in status]


#: Zero-cost stand-in for the history arrays in non-negotiated batches.
_DUMMY_HISTORY = np.zeros((1, 1), dtype=np.float64)
