"""Maze routing (paper Sec. 3.5, after Lee [16]) as windowed A*.

Classic maze routing is a BFS wave expansion; with congestion-dependent
edge costs it generalizes to Dijkstra/A*.  We search inside a window (the
pins' bounding box plus a margin) for speed, falling back to the full grid
when the window has no path, and treat edges at capacity as blocked unless
the caller allows overflow (used by the final never-fail pass).

The inner search runs on flat numpy arrays reused across calls (an epoch
counter invalidates stale state instead of reallocating), which keeps the
per-wire cost low enough to route tens of thousands of wires in seconds.
Per-target heuristic arrays are memoized on the workspace
(:meth:`MazeWorkspace.heuristic`), so repeated searches toward the same
goal bin — fan-in wires, relax-round retries, rip-up reroutes — reuse one
vectorized build instead of recomputing the Manhattan term per neighbour.

This module is the **reference implementation**: the compiled twin in
:mod:`repro.physical.routing.kernel` (``RoutingConfig.kernel``) must
reproduce its paths, counters and costs bit-for-bit, and the differential
suite ``tests/physical/test_kernel_parity.py`` holds it to that.

The same wave expansion also serves the negotiated-congestion router
(:mod:`repro.physical.routing.negotiated`): passing ``present_weight``
switches the edge cost to the PathFinder form
``θ · (1 + history) · (1 + present_weight · overuse)`` where the history
arrays live on the :class:`MazeWorkspace` (``ensure_history``) and
``overuse`` counts how far past capacity the edge would go if this wire
were added.  Edges are then never blocked — congestion is negotiated
through rising present costs and accumulated history, not hard walls.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.physical.routing.grid import BinCoord, RoutingGrid

#: Per-target heuristic arrays kept on a workspace before FIFO eviction
#: (bounds memory on grids where nearly every bin is some wire's goal).
_HEURISTIC_CACHE_LIMIT = 256


class MazeWorkspace:
    """Reusable per-grid search state (g-scores, parents, epochs).

    Also accumulates search statistics (``heap_pushes``, ``heap_pops``,
    ``visited_bins``, ``searches``) as plain integer adds — the router
    reports the totals to the current observability recorder once per
    :func:`~repro.physical.routing.router.route` call, keeping the inner
    loop free of instrumentation calls.

    The compiled kernel (:mod:`repro.physical.routing.kernel`) shares
    these arrays and adds its own lazily-allocated state: preallocated
    binary-heap arrays (``ensure_heap``) and a growable flat path buffer
    (``ensure_path_buffer``), plus ``kernel_batches``/``kernel_wires``
    ticks the router reports alongside the search counters.
    """

    def __init__(self, grid: RoutingGrid) -> None:
        size = grid.nx * grid.ny
        self.grid = grid
        self.g_score = np.zeros(size)
        self.parent = np.full(size, -1, dtype=np.int64)
        self.stamp = np.zeros(size, dtype=np.int64)
        self.closed = np.zeros(size, dtype=np.int64)
        self.epoch = 0
        self.heap_pushes = 0
        self.heap_pops = 0
        self.visited_bins = 0
        self.searches = 0
        self.ripups = 0
        self.kernel_batches = 0
        self.kernel_wires = 0
        # Negotiated-congestion history costs (dimensionless multiples of
        # θ), allocated lazily so the ordered router pays nothing.
        self.h_history: Optional[np.ndarray] = None
        self.v_history: Optional[np.ndarray] = None
        # Per-target memoized heuristic arrays (flat, float64) and their
        # build/hit accounting — see :meth:`heuristic`.
        self._heuristic_cache: Dict[int, np.ndarray] = {}
        self.heuristic_builds = 0
        self.heuristic_hits = 0
        # Kernel state, allocated on first kernel batch.
        self.heap_f: Optional[np.ndarray] = None
        self.heap_n: Optional[np.ndarray] = None
        self.path_out: Optional[np.ndarray] = None

    def begin(self) -> None:
        """Start a fresh search; previous state becomes stale by epoch."""
        self.epoch += 1
        self.searches += 1

    def ensure_history(self) -> "tuple[np.ndarray, np.ndarray]":
        """The per-edge history-cost arrays, allocating them on first use."""
        if self.h_history is None:
            self.h_history = np.zeros(self.grid.horizontal_usage.shape)
            self.v_history = np.zeros(self.grid.vertical_usage.shape)
        return self.h_history, self.v_history

    def heuristic(self, goal_flat: int) -> np.ndarray:
        """The flat Manhattan-distance heuristic toward ``goal_flat``.

        Built vectorized once per distinct target and memoized (FIFO
        eviction beyond ``_HEURISTIC_CACHE_LIMIT`` entries), so searches
        that repeat a goal bin — fan-in wires, relax retries, rip-up
        reroutes — skip the rebuild.  Values are bit-identical to the
        scalar ``(|Δx| + |Δy|) · θ`` form: integer distances are exact
        in float64, so one multiply by θ matches the inline expression.
        """
        cached = self._heuristic_cache.get(goal_flat)
        if cached is not None:
            self.heuristic_hits += 1
            return cached
        grid = self.grid
        gx, gy = goal_flat // grid.ny, goal_flat % grid.ny
        bx = np.arange(grid.nx, dtype=np.int64)[:, None]
        by = np.arange(grid.ny, dtype=np.int64)[None, :]
        table = ((np.abs(bx - gx) + np.abs(by - gy)) * grid.bin_um).ravel()
        if len(self._heuristic_cache) >= _HEURISTIC_CACHE_LIMIT:
            self._heuristic_cache.pop(next(iter(self._heuristic_cache)))
        self._heuristic_cache[goal_flat] = table
        self.heuristic_builds += 1
        return table

    def ensure_heap(self, capacity: int) -> Tuple[np.ndarray, np.ndarray]:
        """The kernel's binary-heap arrays, (re)allocated to ``capacity``."""
        if self.heap_f is None or self.heap_f.shape[0] < capacity:
            self.heap_f = np.empty(capacity, dtype=np.float64)
            self.heap_n = np.empty(capacity, dtype=np.int32)
        return self.heap_f, self.heap_n

    def ensure_path_buffer(self, capacity: int) -> np.ndarray:
        """The kernel's flat path-output buffer (grows across batches)."""
        if self.path_out is None or self.path_out.shape[0] < capacity:
            self.path_out = np.empty(capacity, dtype=np.int32)
        return self.path_out


def maze_route(
    grid: RoutingGrid,
    start: BinCoord,
    goal: BinCoord,
    window_margin: int = 8,
    congestion_weight: float = 2.0,
    allow_overflow: bool = False,
    overflow_penalty: float = 10.0,
    workspace: Optional[MazeWorkspace] = None,
    present_weight: Optional[float] = None,
    kernel: Optional[str] = None,
) -> Optional[List[BinCoord]]:
    """Find a min-cost bin path from ``start`` to ``goal``.

    Edge cost is ``θ · (1 + congestion_weight · usage/capacity)``; an edge
    at capacity is impassable unless ``allow_overflow`` is set, in which
    case it costs an extra factor ``overflow_penalty``.

    With ``present_weight`` set the search instead uses the negotiated
    (PathFinder) cost ``θ · (1 + history) · (1 + present_weight ·
    overuse)`` against the workspace's history arrays; edges are never
    blocked in that mode.

    ``kernel`` selects the implementation per
    :func:`~repro.physical.routing.kernel.resolve_kernel` (``None`` is
    the Python reference); the compiled path is bit-identical and does
    **not** commit usage — callers update the grid either way.

    Returns the bin path including both endpoints, or ``None`` when no
    path exists under the current capacities (with ``allow_overflow`` or
    ``present_weight`` a path always exists on a connected grid).
    """
    if window_margin < 0:
        raise ValueError(f"window_margin must be >= 0, got {window_margin}")
    if workspace is None:
        workspace = MazeWorkspace(grid)
    if kernel is not None:
        from repro.physical.routing.kernel import resolve_kernel, route_wires_kernel

        if resolve_kernel(kernel) == "numba":
            # Single-wire batch; the kernel must not commit usage here
            # (maze_route's contract leaves the grid untouched), so run
            # it and roll the committed path back.
            paths, _ = route_wires_kernel(
                grid, workspace, [(start, goal)],
                window_margin=window_margin,
                congestion_weight=congestion_weight,
                allow_overflow=allow_overflow,
                overflow_penalty=overflow_penalty,
                present_weight=present_weight,
            )
            if paths[0] is not None:
                grid.add_usage(paths[0], amount=-1)
            return paths[0]
    path = _a_star(
        grid, start, goal, window_margin, congestion_weight,
        allow_overflow, overflow_penalty, workspace, present_weight,
    )
    if path is None and window_margin < max(grid.nx, grid.ny):
        # Window too tight (congestion detour outside it) — search the full grid.
        path = _a_star(
            grid, start, goal, max(grid.nx, grid.ny), congestion_weight,
            allow_overflow, overflow_penalty, workspace, present_weight,
        )
    return path


def _a_star(
    grid: RoutingGrid,
    start: BinCoord,
    goal: BinCoord,
    window_margin: int,
    congestion_weight: float,
    allow_overflow: bool,
    overflow_penalty: float,
    ws: MazeWorkspace,
    present_weight: Optional[float] = None,
) -> Optional[List[BinCoord]]:
    nx, ny = grid.nx, grid.ny
    lo_x = max(0, min(start[0], goal[0]) - window_margin)
    hi_x = min(nx - 1, max(start[0], goal[0]) + window_margin)
    lo_y = max(0, min(start[1], goal[1]) - window_margin)
    hi_y = min(ny - 1, max(start[1], goal[1]) + window_margin)
    theta = grid.bin_um
    gx, gy = goal
    h_usage = grid.horizontal_usage
    v_usage = grid.vertical_usage
    h_capacity = grid.horizontal_capacity
    v_capacity = grid.vertical_capacity
    negotiated = present_weight is not None
    if negotiated:
        h_history, v_history = ws.ensure_history()

    ws.begin()
    epoch = ws.epoch
    g_score = ws.g_score
    parent = ws.parent
    stamp = ws.stamp
    closed = ws.closed

    start_flat = start[0] * ny + start[1]
    goal_flat = gx * ny + gy
    heur = ws.heuristic(goal_flat)
    g_score[start_flat] = 0.0
    stamp[start_flat] = epoch
    parent[start_flat] = -1
    # Search statistics: plain local ints, flushed onto the workspace at
    # every exit so the router can report them (null-recorder contract:
    # no recorder calls inside the wave expansion).
    pushes = 1
    pops = 0
    visited = 0
    open_heap = [(heur[start_flat], start_flat)]
    while open_heap:
        _, current = heapq.heappop(open_heap)
        pops += 1
        if current == goal_flat:
            flat_path = [current]
            while parent[current] != -1:
                current = parent[current]
                flat_path.append(current)
            flat_path.reverse()
            ws.heap_pushes += pushes
            ws.heap_pops += pops
            ws.visited_bins += visited
            return [(int(f // ny), int(f % ny)) for f in flat_path]
        if closed[current] == epoch:
            continue
        closed[current] = epoch
        visited += 1
        cx, cy = current // ny, current % ny
        current_g = g_score[current]
        # unrolled 4-neighbour expansion
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nbx = cx + dx
            nby = cy + dy
            if not (lo_x <= nbx <= hi_x and lo_y <= nby <= hi_y):
                continue
            neighbor = nbx * ny + nby
            if closed[neighbor] == epoch:
                continue
            if dx != 0:
                ex = cx if dx > 0 else nbx
                usage, capacity = h_usage[ex, cy], h_capacity[ex, cy]
                history = h_history[ex, cy] if negotiated else 0.0
            else:
                ey = cy if dy > 0 else nby
                usage, capacity = v_usage[cx, ey], v_capacity[cx, ey]
                history = v_history[cx, ey] if negotiated else 0.0
            if negotiated:
                # PathFinder cost: congestion is priced, never blocked.
                overuse = usage + 1 - capacity
                step = theta * (1.0 + history)
                if overuse > 0:
                    step *= 1.0 + present_weight * overuse
            elif usage >= capacity:
                if not allow_overflow:
                    continue
                step = theta * (1.0 + congestion_weight) * overflow_penalty
            else:
                step = theta * (1.0 + congestion_weight * (usage / capacity))
            tentative = current_g + step
            if stamp[neighbor] != epoch or tentative < g_score[neighbor]:
                g_score[neighbor] = tentative
                stamp[neighbor] = epoch
                parent[neighbor] = current
                heapq.heappush(open_heap, (tentative + heur[neighbor], neighbor))
                pushes += 1
    ws.heap_pushes += pushes
    ws.heap_pops += pops
    ws.visited_bins += visited
    return None
