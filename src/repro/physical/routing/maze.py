"""Maze routing (paper Sec. 3.5, after Lee [16]) as windowed A*.

Classic maze routing is a BFS wave expansion; with congestion-dependent
edge costs it generalizes to Dijkstra/A*.  We search inside a window (the
pins' bounding box plus a margin) for speed, falling back to the full grid
when the window has no path, and treat edges at capacity as blocked unless
the caller allows overflow (used by the final never-fail pass).

The inner search runs on flat numpy arrays reused across calls (an epoch
counter invalidates stale state instead of reallocating), which keeps the
per-wire cost low enough to route tens of thousands of wires in seconds.

The same wave expansion also serves the negotiated-congestion router
(:mod:`repro.physical.routing.negotiated`): passing ``present_weight``
switches the edge cost to the PathFinder form
``θ · (1 + history) · (1 + present_weight · overuse)`` where the history
arrays live on the :class:`MazeWorkspace` (``ensure_history``) and
``overuse`` counts how far past capacity the edge would go if this wire
were added.  Edges are then never blocked — congestion is negotiated
through rising present costs and accumulated history, not hard walls.
"""

from __future__ import annotations

import heapq
from typing import List, Optional

import numpy as np

from repro.physical.routing.grid import BinCoord, RoutingGrid


class MazeWorkspace:
    """Reusable per-grid search state (g-scores, parents, epochs).

    Also accumulates search statistics (``heap_pushes``, ``heap_pops``,
    ``visited_bins``, ``searches``) as plain integer adds — the router
    reports the totals to the current observability recorder once per
    :func:`~repro.physical.routing.router.route` call, keeping the inner
    loop free of instrumentation calls.
    """

    def __init__(self, grid: RoutingGrid) -> None:
        size = grid.nx * grid.ny
        self.grid = grid
        self.g_score = np.zeros(size)
        self.parent = np.full(size, -1, dtype=np.int64)
        self.stamp = np.zeros(size, dtype=np.int64)
        self.closed = np.zeros(size, dtype=np.int64)
        self.epoch = 0
        self.heap_pushes = 0
        self.heap_pops = 0
        self.visited_bins = 0
        self.searches = 0
        self.ripups = 0
        # Negotiated-congestion history costs (dimensionless multiples of
        # θ), allocated lazily so the ordered router pays nothing.
        self.h_history: Optional[np.ndarray] = None
        self.v_history: Optional[np.ndarray] = None

    def begin(self) -> None:
        """Start a fresh search; previous state becomes stale by epoch."""
        self.epoch += 1
        self.searches += 1

    def ensure_history(self) -> "tuple[np.ndarray, np.ndarray]":
        """The per-edge history-cost arrays, allocating them on first use."""
        if self.h_history is None:
            self.h_history = np.zeros(self.grid.horizontal_usage.shape)
            self.v_history = np.zeros(self.grid.vertical_usage.shape)
        return self.h_history, self.v_history


def maze_route(
    grid: RoutingGrid,
    start: BinCoord,
    goal: BinCoord,
    window_margin: int = 8,
    congestion_weight: float = 2.0,
    allow_overflow: bool = False,
    overflow_penalty: float = 10.0,
    workspace: Optional[MazeWorkspace] = None,
    present_weight: Optional[float] = None,
) -> Optional[List[BinCoord]]:
    """Find a min-cost bin path from ``start`` to ``goal``.

    Edge cost is ``θ · (1 + congestion_weight · usage/capacity)``; an edge
    at capacity is impassable unless ``allow_overflow`` is set, in which
    case it costs an extra factor ``overflow_penalty``.

    With ``present_weight`` set the search instead uses the negotiated
    (PathFinder) cost ``θ · (1 + history) · (1 + present_weight ·
    overuse)`` against the workspace's history arrays; edges are never
    blocked in that mode.

    Returns the bin path including both endpoints, or ``None`` when no
    path exists under the current capacities (with ``allow_overflow`` or
    ``present_weight`` a path always exists on a connected grid).
    """
    if window_margin < 0:
        raise ValueError(f"window_margin must be >= 0, got {window_margin}")
    if workspace is None:
        workspace = MazeWorkspace(grid)
    path = _a_star(
        grid, start, goal, window_margin, congestion_weight,
        allow_overflow, overflow_penalty, workspace, present_weight,
    )
    if path is None and window_margin < max(grid.nx, grid.ny):
        # Window too tight (congestion detour outside it) — search the full grid.
        path = _a_star(
            grid, start, goal, max(grid.nx, grid.ny), congestion_weight,
            allow_overflow, overflow_penalty, workspace, present_weight,
        )
    return path


def _a_star(
    grid: RoutingGrid,
    start: BinCoord,
    goal: BinCoord,
    window_margin: int,
    congestion_weight: float,
    allow_overflow: bool,
    overflow_penalty: float,
    ws: MazeWorkspace,
    present_weight: Optional[float] = None,
) -> Optional[List[BinCoord]]:
    nx, ny = grid.nx, grid.ny
    lo_x = max(0, min(start[0], goal[0]) - window_margin)
    hi_x = min(nx - 1, max(start[0], goal[0]) + window_margin)
    lo_y = max(0, min(start[1], goal[1]) - window_margin)
    hi_y = min(ny - 1, max(start[1], goal[1]) + window_margin)
    theta = grid.bin_um
    gx, gy = goal
    h_usage = grid.horizontal_usage
    v_usage = grid.vertical_usage
    h_capacity = grid.horizontal_capacity
    v_capacity = grid.vertical_capacity
    negotiated = present_weight is not None
    if negotiated:
        h_history, v_history = ws.ensure_history()

    ws.begin()
    epoch = ws.epoch
    g_score = ws.g_score
    parent = ws.parent
    stamp = ws.stamp
    closed = ws.closed

    start_flat = start[0] * ny + start[1]
    goal_flat = gx * ny + gy
    g_score[start_flat] = 0.0
    stamp[start_flat] = epoch
    parent[start_flat] = -1
    # Search statistics: plain local ints, flushed onto the workspace at
    # every exit so the router can report them (null-recorder contract:
    # no recorder calls inside the wave expansion).
    pushes = 1
    pops = 0
    visited = 0
    open_heap = [((abs(start[0] - gx) + abs(start[1] - gy)) * theta, start_flat)]
    while open_heap:
        _, current = heapq.heappop(open_heap)
        pops += 1
        if current == goal_flat:
            flat_path = [current]
            while parent[current] != -1:
                current = parent[current]
                flat_path.append(current)
            flat_path.reverse()
            ws.heap_pushes += pushes
            ws.heap_pops += pops
            ws.visited_bins += visited
            return [(int(f // ny), int(f % ny)) for f in flat_path]
        if closed[current] == epoch:
            continue
        closed[current] = epoch
        visited += 1
        cx, cy = current // ny, current % ny
        current_g = g_score[current]
        # unrolled 4-neighbour expansion
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nbx = cx + dx
            nby = cy + dy
            if not (lo_x <= nbx <= hi_x and lo_y <= nby <= hi_y):
                continue
            neighbor = nbx * ny + nby
            if closed[neighbor] == epoch:
                continue
            if dx != 0:
                ex = cx if dx > 0 else nbx
                usage, capacity = h_usage[ex, cy], h_capacity[ex, cy]
                history = h_history[ex, cy] if negotiated else 0.0
            else:
                ey = cy if dy > 0 else nby
                usage, capacity = v_usage[cx, ey], v_capacity[cx, ey]
                history = v_history[cx, ey] if negotiated else 0.0
            if negotiated:
                # PathFinder cost: congestion is priced, never blocked.
                overuse = usage + 1 - capacity
                step = theta * (1.0 + history)
                if overuse > 0:
                    step *= 1.0 + present_weight * overuse
            elif usage >= capacity:
                if not allow_overflow:
                    continue
                step = theta * (1.0 + congestion_weight) * overflow_penalty
            else:
                step = theta * (1.0 + congestion_weight * (usage / capacity))
            tentative = current_g + step
            if stamp[neighbor] != epoch or tentative < g_score[neighbor]:
                g_score[neighbor] = tentative
                stamp[neighbor] = epoch
                parent[neighbor] = current
                heuristic = (abs(nbx - gx) + abs(nby - gy)) * theta
                heapq.heappush(open_heap, (tentative + heuristic, neighbor))
                pushes += 1
    ws.heap_pushes += pushes
    ws.heap_pops += pops
    ws.visited_bins += visited
    return None
