"""Negotiated-congestion rip-up-and-reroute routing (PathFinder style).

The paper's Sec. 3.5 router commits wires once in a fixed order and
relaxes the virtual capacity when wires fail — congestion is resolved by
*allowing more overflow*.  This module implements the alternative that
FPGA/ASIC flows converged on (McMurchie & Ebeling's PathFinder): every
wire is routed with congestion *priced* instead of blocked, then the
router iteratively rips up exactly the wires crossing overused edges and
reroutes them under two escalating cost terms:

* a **present** cost ``1 + present_weight · overuse`` that grows
  geometrically each iteration (``present_growth``), making currently
  contested edges progressively more expensive, and
* a **history** cost accumulated on every edge that was overused at the
  end of an iteration (``history_increment`` per unit of overuse), which
  remembers chronic congestion across iterations so wires stop
  oscillating between two equally contested corridors.

The search itself is the existing windowed A* of
:mod:`repro.physical.routing.maze` — the negotiated costs are folded into
the same :class:`~repro.physical.routing.maze.MazeWorkspace` arrays
(``ensure_history``), so the hot inner loop is shared with the ordered
router rather than duplicated.  With ``engine="numba"`` the initial pass
and each rip-up iteration instead run as **one batched kernel invocation
each** (:func:`~repro.physical.routing.kernel.route_wires_kernel`): the
kernel commits every path's usage between wires internally, so the batch
reproduces the sequential reference bit-for-bit while crossing the
Python/compiled boundary once per iteration instead of once per wire.

Entry point: :func:`negotiate_routes`, called by
:func:`repro.physical.routing.router.route` when
``RoutingConfig.algorithm == "negotiated"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

import numpy as np

from repro.mapping.netlist import Netlist
from repro.physical.layout import Placement
from repro.physical.routing.grid import BinCoord, RoutingGrid
from repro.physical.routing.maze import MazeWorkspace, maze_route

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.physical.routing.router import RoutingConfig


@dataclass
class NegotiationOutcome:
    """Everything one negotiated-congestion run produced.

    ``paths``/``lengths`` are keyed by wire index; ``iterations`` counts
    the rip-up rounds that actually ran and ``ripups`` the individual
    wire rip-ups across all of them.  ``converged`` is True when the
    final usage respects every edge capacity.
    """

    paths: Dict[int, List[BinCoord]]
    lengths: Dict[int, float]
    iterations: int = 0
    ripups: int = 0
    converged: bool = True
    metadata: dict = field(default_factory=dict)


def _pin_bins(
    netlist: Netlist, placement: Placement, grid: RoutingGrid, index: int
) -> Tuple[BinCoord, BinCoord, float]:
    """``(start, goal, same_bin_length)`` for one wire's pins."""
    wire = netlist.wires[index]
    sx, sy = placement.x[wire.source], placement.y[wire.source]
    tx, ty = placement.x[wire.target], placement.y[wire.target]
    start = grid.bin_of(sx, sy)
    goal = grid.bin_of(tx, ty)
    length = float(abs(sx - tx) + abs(sy - ty))
    return start, goal, length


def _crosses_overuse(
    path: Sequence[BinCoord],
    over_h: np.ndarray,
    over_v: np.ndarray,
) -> bool:
    """True when ``path`` uses any edge flagged in the overuse masks."""
    for a, b in zip(path, path[1:]):
        (ax, ay), (bx, by) = a, b
        if ay == by:
            if over_h[min(ax, bx), ay]:
                return True
        elif over_v[ax, min(ay, by)]:
            return True
    return False


def negotiate_routes(
    netlist: Netlist,
    placement: Placement,
    grid: RoutingGrid,
    workspace: MazeWorkspace,
    order: Sequence[int],
    config: "RoutingConfig",
    engine: str = "python",
) -> NegotiationOutcome:
    """Route every wire with negotiated congestion; returns the outcome.

    The caller owns the grid: usage counters are committed on it exactly
    as the ordered router does, so downstream consumers (cost model,
    verifier, congestion maps) see the same bookkeeping.  ``engine``
    selects the search implementation (``"python"`` reference or the
    bit-identical batched ``"numba"`` kernel).
    """
    h_history, v_history = workspace.ensure_history()
    present = config.present_weight
    paths: Dict[int, List[BinCoord]] = {}
    lengths: Dict[int, float] = {}

    def search(index: int) -> None:
        start, goal, same_bin_length = _pin_bins(netlist, placement, grid, index)
        if start == goal:
            paths[index] = [start]
            lengths[index] = same_bin_length
            return
        path = maze_route(
            grid,
            start,
            goal,
            window_margin=config.window_margin_bins,
            congestion_weight=config.congestion_weight,
            workspace=workspace,
            present_weight=present,
        )
        if path is None:  # pragma: no cover - connected grid always routes
            raise RuntimeError(f"wire {index} could not be routed at all")
        grid.add_usage(path)
        paths[index] = path
        lengths[index] = grid.path_length_um(path)

    def search_batch(indices: Sequence[int]) -> None:
        # One kernel invocation for the whole pass.  Same-bin wires
        # commit no usage, so resolving them Python-side first leaves
        # the committed sequence — and therefore every cost the kernel
        # sees — identical to the per-wire reference order.
        from repro.physical.routing.kernel import route_wires_kernel

        pending: List[int] = []
        pairs: List[Tuple[BinCoord, BinCoord]] = []
        for index in indices:
            start, goal, same_bin_length = _pin_bins(netlist, placement, grid, index)
            if start == goal:
                paths[index] = [start]
                lengths[index] = same_bin_length
            else:
                pending.append(index)
                pairs.append((start, goal))
        kernel_paths, _ = route_wires_kernel(
            grid, workspace, pairs,
            window_margin=config.window_margin_bins,
            congestion_weight=config.congestion_weight,
            present_weight=present,
        )
        for index, path in zip(pending, kernel_paths):
            if path is None:  # pragma: no cover - negotiated never blocks
                raise RuntimeError(f"wire {index} could not be routed at all")
            paths[index] = path
            lengths[index] = grid.path_length_um(path)

    def route_pass(indices: Sequence[int]) -> None:
        if engine == "numba":
            search_batch(indices)
        else:
            for index in indices:
                search(index)

    route_pass(order)

    iterations = 0
    ripups = 0
    for _ in range(config.max_ripup_iterations):
        over_h = grid.horizontal_usage > grid.horizontal_capacity
        over_v = grid.vertical_usage > grid.vertical_capacity
        if not (over_h.any() or over_v.any()):
            break
        iterations += 1
        # Chronic congestion leaves a permanent trace: every overused
        # edge gets history proportional to how far over it went.
        h_history += config.history_increment * np.maximum(
            grid.horizontal_usage - grid.horizontal_capacity, 0
        )
        v_history += config.history_increment * np.maximum(
            grid.vertical_usage - grid.vertical_capacity, 0
        )
        victims = [
            index
            for index in order
            if len(paths[index]) > 1 and _crosses_overuse(paths[index], over_h, over_v)
        ]
        for index in victims:
            grid.add_usage(paths[index], amount=-1)
        ripups += len(victims)
        present *= config.present_growth
        route_pass(victims)
    workspace.ripups += ripups

    over_h = grid.horizontal_usage > grid.horizontal_capacity
    over_v = grid.vertical_usage > grid.vertical_capacity
    return NegotiationOutcome(
        paths=paths,
        lengths=lengths,
        iterations=iterations,
        ripups=ripups,
        converged=not (over_h.any() or over_v.any()),
        metadata={"final_present_weight": present},
    )
