"""AutoNCS — an EDA framework for large-scale hybrid neuromorphic systems.

A faithful Python reproduction of Wen et al., "An EDA Framework for Large
Scale Hybrid Neuromorphic Computing Systems" (DAC 2015).  The library
covers the whole stack:

* :mod:`repro.networks` — connection matrices, QR-pattern Hopfield
  testbenches, LDPC and synthetic sparse networks;
* :mod:`repro.clustering` — MSC, GCP, traversing, crossbar preference, ISC;
* :mod:`repro.hardware` — technology/device/cell models and analog
  crossbar simulation;
* :mod:`repro.mapping` — netlists, the FullCro baseline, AutoNCS mapping;
* :mod:`repro.physical` — analytical placement, maze routing, cost;
* :mod:`repro.core` — the end-to-end :class:`~repro.core.autoncs.AutoNCS`
  pipeline;
* :mod:`repro.runtime` — parallel, cache-aware execution of sweeps over
  the flow (process pools, content-addressed artifact cache, events);
* :mod:`repro.experiments` — every table and figure of the paper.

Quickstart
----------
>>> from repro.networks import random_sparse_network
>>> from repro.core import AutoNCS
>>> network = random_sparse_network(100, 0.05, rng=42)
>>> report = AutoNCS().compare(network, rng=42)
>>> report.wirelength_reduction  # doctest: +SKIP
41.3
"""

from repro.core import AutoNCS, AutoNcsConfig, AutoNcsResult, ComparisonReport

__version__ = "1.2.0"

__all__ = [
    "AutoNCS",
    "AutoNcsConfig",
    "AutoNcsResult",
    "ComparisonReport",
    "__version__",
]
