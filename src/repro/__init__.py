"""AutoNCS — an EDA framework for large-scale hybrid neuromorphic systems.

A faithful Python reproduction of Wen et al., "An EDA Framework for Large
Scale Hybrid Neuromorphic Computing Systems" (DAC 2015).  The library
covers the whole stack:

* :mod:`repro.networks` — connection matrices, QR-pattern Hopfield
  testbenches, LDPC and synthetic sparse networks;
* :mod:`repro.clustering` — MSC, GCP, traversing, crossbar preference, ISC;
* :mod:`repro.hardware` — technology/device/cell models and analog
  crossbar simulation;
* :mod:`repro.mapping` — netlists, the FullCro baseline, AutoNCS mapping;
* :mod:`repro.physical` — analytical placement, maze routing, cost;
* :mod:`repro.core` — the end-to-end :class:`~repro.core.autoncs.AutoNCS`
  pipeline;
* :mod:`repro.runtime` — parallel, cache-aware execution of sweeps over
  the flow (process pools, content-addressed artifact cache, events);
* :mod:`repro.observability` — flow-wide tracing spans, typed metrics
  and Perfetto/text exporters behind a zero-overhead null recorder;
* :mod:`repro.experiments` — every table and figure of the paper.

Public API
----------
The stable facade (see :mod:`repro.api`) is four keyword-only
functions, one options dataclass, plus the observability surface:

>>> import repro
>>> from repro.networks import random_sparse_network
>>> network = random_sparse_network(100, 0.05, rng=42)
>>> report = repro.compare(network, options=repro.FlowOptions(seed=42))
>>> report.wirelength_reduction  # doctest: +SKIP
41.3

Tracing a run:

>>> rec = repro.Recorder()
>>> with repro.recording(rec):
...     result = repro.map_network(network, options=repro.FlowOptions(seed=42))
>>> repro.write_chrome_trace(rec.tracer.spans, "trace.jsonl")  # doctest: +SKIP
"""

# The `repro.verify` *submodule* must be imported before the facade
# function `verify` is bound below: the import machinery sets the
# `verify` attribute on this package only at the submodule's first load,
# so eager-importing it here lets the function shadow the attribute
# while `import repro.verify` / `from repro.verify import ...` keep
# working through sys.modules.
import repro.verify  # noqa: F401  (eager submodule load, see above)
from repro.api import FlowOptions, compare, load_network, map_network, verify
from repro.core import AutoNCS, AutoNcsConfig, AutoNcsResult, ComparisonReport
from repro.core.config import fast_config
from repro.observability import (
    MetricsSnapshot,
    Recorder,
    get_recorder,
    recording,
    set_recorder,
    write_chrome_trace,
    write_metrics_text,
)

__version__ = "1.8.0"

__all__ = [
    "AutoNCS",
    "AutoNcsConfig",
    "AutoNcsResult",
    "ComparisonReport",
    "FlowOptions",
    "MetricsSnapshot",
    "Recorder",
    "__version__",
    "compare",
    "fast_config",
    "get_recorder",
    "load_network",
    "map_network",
    "recording",
    "set_recorder",
    "verify",
    "write_chrome_trace",
    "write_metrics_text",
]
