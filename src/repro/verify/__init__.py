"""Independent end-to-end verification of mapped designs (extension).

The flow in :mod:`repro.core` *produces* hybrid mappings and layouts; this
package *checks* them, re-deriving every claimed invariant from the source
:class:`~repro.networks.connection_matrix.ConnectionMatrix` and the flow
artifacts without trusting the code that built them:

* **coverage** — every source connection is realized exactly once across
  crossbar cells and discrete synapses, and nothing extra is realized;
* **hardware** — crossbar sizes come from the configured library, cluster
  geometry and capacities are respected, the netlist agrees with the
  mapping, and repair/spare bindings are consistent with the defect map;
* **physical** — placed cells are finite, on-chip and non-overlapping
  post-legalization, and every routed wire connects its true pin bins
  without breaking the routing grid's capacity accounting;
* **functional** — the hybrid simulation of the mapped design reproduces
  the ideal network (``y = x @ W`` and Hopfield recall) within tolerance.

Entry points: :func:`verify_mapping` / :func:`verify_flow` return a
structured :class:`VerificationReport`; ``python -m repro verify`` exposes
the same checks on the command line, and ``AutoNCS.run(..., verify=True)``
runs them inline after the flow.
"""

from repro.verify.checks import (
    check_coverage,
    check_functional,
    check_hardware,
    check_physical,
)
from repro.verify.report import (
    CheckResult,
    VerificationError,
    VerificationReport,
    Violation,
)
from repro.verify.verifier import CHECK_NAMES, verify_flow, verify_mapping

__all__ = [
    "CHECK_NAMES",
    "CheckResult",
    "VerificationError",
    "VerificationReport",
    "Violation",
    "check_coverage",
    "check_functional",
    "check_hardware",
    "check_physical",
    "verify_flow",
    "verify_mapping",
]
