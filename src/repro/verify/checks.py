"""The four verification checks (coverage, hardware, physical, functional).

Every check is read-only and *independent*: it re-derives the invariant
from the source network and the artifact under test instead of trusting
intermediate bookkeeping (``MappingResult.validate`` uses ``assert`` and
is part of the producing code; these checks survive ``python -O`` and a
buggy producer alike).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.mapping.netlist import CellKind, MappingResult
from repro.physical.layout import Placement
from repro.utils.rng import RngLike, ensure_rng
from repro.verify.report import CheckResult, Violation

#: Per-category cap on individually reported violations; the remainder is
#: folded into one summarizing violation so reports stay readable (and
#: report objects stay small) even for catastrophically broken inputs.
MAX_DETAILED_VIOLATIONS = 25


def _add_capped(
    violations: List[Violation],
    check: str,
    items: Iterable[str],
    summary: str,
    context: Optional[dict] = None,
) -> int:
    """Append one violation per item up to the cap, then a rollup line."""
    items = list(items)
    for message in items[:MAX_DETAILED_VIOLATIONS]:
        violations.append(Violation(check=check, message=message, context=context or {}))
    hidden = len(items) - MAX_DETAILED_VIOLATIONS
    if hidden > 0:
        violations.append(
            Violation(
                check=check,
                message=f"{summary}: {hidden} further case(s) beyond the first "
                f"{MAX_DETAILED_VIOLATIONS}",
                context={"hidden": hidden, **(context or {})},
            )
        )
    return len(items)


# ----------------------------------------------------------------------
# 1. Coverage — the mapping realizes the network, exactly
# ----------------------------------------------------------------------
def check_coverage(mapping: MappingResult) -> CheckResult:
    """Every source connection realized exactly once; nothing extra.

    Re-counts realization from scratch: the multiset of connections over
    all crossbar instances plus all discrete synapses must equal the set
    of 1-entries of the source connection matrix.
    """
    violations: List[Violation] = []
    realized: Counter = Counter()
    for index, instance in enumerate(mapping.instances):
        for pair in instance.connections:
            realized[tuple(int(v) for v in pair)] += 1
    crossbar_realized = sum(realized.values())
    for pair in mapping.synapse_connections:
        realized[tuple(int(v) for v in pair)] += 1

    expected = set(mapping.network.connection_list())
    duplicated = sorted(pair for pair, count in realized.items() if count > 1)
    missing = sorted(expected - set(realized))
    extra = sorted(set(realized) - expected)

    _add_capped(
        violations,
        "coverage",
        (f"connection {pair} realized {realized[pair]} times" for pair in duplicated),
        "double-realized connections",
    )
    _add_capped(
        violations,
        "coverage",
        (f"connection {pair} of the network is not realized anywhere" for pair in missing),
        "unrealized connections",
    )
    _add_capped(
        violations,
        "coverage",
        (
            f"realized connection {pair} does not exist in network "
            f"{mapping.network.name!r}"
            for pair in extra
        ),
        "phantom connections",
    )
    return CheckResult(
        name="coverage",
        violations=violations,
        stats={
            "expected": len(expected),
            "realized_crossbar": crossbar_realized,
            "realized_synapse": len(mapping.synapse_connections),
        },
    )


# ----------------------------------------------------------------------
# 2. Hardware legality — library sizes, geometry, netlist, defect binding
# ----------------------------------------------------------------------
def _check_instances(mapping: MappingResult, violations: List[Violation]) -> None:
    n = mapping.network.size
    for index, instance in enumerate(mapping.instances):
        if instance.size not in mapping.library:
            violations.append(
                Violation(
                    "hardware",
                    f"crossbar {index} has size {instance.size}, not in the "
                    f"library {mapping.library.sizes}",
                    {"instance": index, "size": instance.size},
                )
            )
        if len(instance.rows) > instance.size or len(instance.cols) > instance.size:
            violations.append(
                Violation(
                    "hardware",
                    f"crossbar {index} hosts {len(instance.rows)} rows / "
                    f"{len(instance.cols)} cols on a size-{instance.size} array",
                    {"instance": index},
                )
            )
        if len(set(instance.rows)) != len(instance.rows) or len(set(instance.cols)) != len(
            instance.cols
        ):
            violations.append(
                Violation(
                    "hardware",
                    f"crossbar {index} assigns a neuron to more than one "
                    "row or column port",
                    {"instance": index},
                )
            )
        out_of_range = [
            neuron
            for neuron in (*instance.rows, *instance.cols)
            if not 0 <= int(neuron) < n
        ]
        if out_of_range:
            violations.append(
                Violation(
                    "hardware",
                    f"crossbar {index} references neurons {sorted(set(out_of_range))} "
                    f"outside [0, {n})",
                    {"instance": index},
                )
            )
        row_set = set(instance.rows)
        col_set = set(instance.cols)
        bad_cells = [
            pair
            for pair in instance.connections
            if pair[0] not in row_set or pair[1] not in col_set
        ]
        _add_capped(
            violations,
            "hardware",
            (
                f"crossbar {index}: connection {pair} uses a neuron with no "
                "row/column port on this array"
                for pair in bad_cells
            ),
            f"crossbar {index} portless connections",
            {"instance": index},
        )
        if len(instance.connections) > instance.size * instance.size:
            violations.append(
                Violation(
                    "hardware",
                    f"crossbar {index} claims {len(instance.connections)} cells "
                    f"on a size-{instance.size} array (capacity "
                    f"{instance.size * instance.size})",
                    {"instance": index},
                )
            )
    for index, (i, j) in enumerate(mapping.synapse_connections):
        if not (0 <= int(i) < n and 0 <= int(j) < n):
            violations.append(
                Violation(
                    "hardware",
                    f"discrete synapse {index} connects ({i}, {j}) outside [0, {n})",
                    {"synapse": index},
                )
            )


def _check_netlist(mapping: MappingResult, violations: List[Violation]) -> None:
    """The physical netlist must agree with the logical mapping."""
    netlist = mapping.netlist
    n = mapping.network.size
    expected_cells = n + mapping.num_crossbars + mapping.num_synapses
    if netlist.num_cells != expected_cells:
        violations.append(
            Violation(
                "hardware",
                f"netlist has {netlist.num_cells} cells, mapping implies "
                f"{expected_cells} (={n} neurons + {mapping.num_crossbars} "
                f"crossbars + {mapping.num_synapses} synapses)",
                {},
            )
        )
        return  # per-kind checks below assume the cell layout
    kinds = Counter(cell.kind for cell in netlist.cells)
    for kind, expected in (
        (CellKind.NEURON, n),
        (CellKind.CROSSBAR, mapping.num_crossbars),
        (CellKind.SYNAPSE, mapping.num_synapses),
    ):
        if kinds.get(kind, 0) != expected:
            violations.append(
                Violation(
                    "hardware",
                    f"netlist has {kinds.get(kind, 0)} {kind.value} cell(s), "
                    f"mapping implies {expected}",
                    {"kind": kind.value},
                )
            )
    expected_wires = (
        sum(len(x.rows) + len(x.cols) for x in mapping.instances)
        + 2 * mapping.num_synapses
    )
    if netlist.num_wires != expected_wires:
        violations.append(
            Violation(
                "hardware",
                f"netlist has {netlist.num_wires} wires, mapping implies "
                f"{expected_wires} (crossbar ports + 2 per synapse)",
                {},
            )
        )
    # Crossbar cell footprints must come from the library spec of their size.
    crossbar_cells = [c for c in netlist.cells if c.kind == CellKind.CROSSBAR]
    for index, (cell, instance) in enumerate(zip(crossbar_cells, mapping.instances)):
        spec = None
        if instance.size in mapping.library:
            spec = mapping.library.spec(instance.size)
        if spec is not None and not (
            np.isclose(cell.width, spec.side_um) and np.isclose(cell.height, spec.side_um)
        ):
            violations.append(
                Violation(
                    "hardware",
                    f"crossbar cell {cell.name!r} measures {cell.width:.3f}×"
                    f"{cell.height:.3f} µm, library size {instance.size} "
                    f"specifies {spec.side_um:.3f} µm",
                    {"instance": index},
                )
            )


def _check_defect_binding(mapping: MappingResult, violations: List[Violation]) -> None:
    """Repair/spare bindings must stay consistent with the defect map."""
    defect_map = mapping.metadata.get("defect_map")
    binding = mapping.metadata.get("physical_binding")
    if defect_map is None:
        if binding is not None:
            violations.append(
                Violation(
                    "hardware",
                    "mapping records a physical_binding but carries no defect map",
                    {},
                )
            )
        return
    if defect_map.num_instances < mapping.num_crossbars:
        violations.append(
            Violation(
                "hardware",
                f"defect map covers {defect_map.num_instances} physical "
                f"crossbar(s), mapping places {mapping.num_crossbars}",
                {},
            )
        )
        return
    if binding is not None and len(binding) != mapping.num_crossbars:
        violations.append(
            Violation(
                "hardware",
                f"physical_binding lists {len(binding)} crossbar(s), mapping "
                f"places {mapping.num_crossbars}",
                {},
            )
        )
    from repro.reliability.defects import lost_connections

    for index, instance in enumerate(mapping.instances):
        defects = defect_map.instances[index]
        if defects.size < instance.size:
            violations.append(
                Violation(
                    "hardware",
                    f"crossbar {index} (size {instance.size}) is bound to a "
                    f"physical array of size {defects.size}",
                    {"instance": index},
                )
            )
            continue
        if binding is None:
            # Unrepaired mapping: dead cells may still carry connections.
            continue
        dead = lost_connections(instance, defects)
        _add_capped(
            violations,
            "hardware",
            (
                f"repaired crossbar {index}: connection {pair} still sits on a "
                "dead cell of its bound physical array"
                for pair in dead
            ),
            f"repaired crossbar {index} dead-cell connections",
            {"instance": index},
        )


def check_hardware(mapping: MappingResult) -> CheckResult:
    """Library sizes, cluster geometry, netlist and defect-map consistency."""
    violations: List[Violation] = []
    _check_instances(mapping, violations)
    _check_netlist(mapping, violations)
    _check_defect_binding(mapping, violations)
    return CheckResult(
        name="hardware",
        violations=violations,
        stats={
            "crossbars": mapping.num_crossbars,
            "synapses": mapping.num_synapses,
            "library": tuple(mapping.library.sizes),
        },
    )


# ----------------------------------------------------------------------
# 3. Physical legality — placement on-chip & overlap-free, routing sound
# ----------------------------------------------------------------------
def _check_placement(
    mapping: MappingResult,
    placement: Placement,
    violations: List[Violation],
    overlap_tolerance: float,
) -> None:
    netlist = mapping.netlist
    if placement.num_cells != netlist.num_cells:
        violations.append(
            Violation(
                "physical",
                f"placement holds {placement.num_cells} cells, netlist has "
                f"{netlist.num_cells}",
                {},
            )
        )
        return
    if not (np.all(np.isfinite(placement.x)) and np.all(np.isfinite(placement.y))):
        bad = int(
            np.count_nonzero(~np.isfinite(placement.x))
            + np.count_nonzero(~np.isfinite(placement.y))
        )
        violations.append(
            Violation(
                "physical",
                f"placement has {bad} non-finite coordinate(s)",
                {"non_finite": bad},
            )
        )
        return
    if not (
        np.allclose(placement.widths, netlist.widths())
        and np.allclose(placement.heights, netlist.heights())
    ):
        violations.append(
            Violation(
                "physical",
                "placement cell dimensions disagree with the netlist footprints",
                {},
            )
        )
    ratio = placement.overlap_ratio()
    if ratio > overlap_tolerance:
        violations.append(
            Violation(
                "physical",
                f"post-legalization cell overlap is {ratio:.4%} of total cell "
                f"area (tolerance {overlap_tolerance:.4%})",
                {"overlap_ratio": ratio},
            )
        )


def _recompute_usage(grid, paths) -> Tuple[np.ndarray, np.ndarray]:
    """Independent edge-usage tally from the committed paths."""
    horizontal = np.zeros_like(grid.horizontal_usage)
    vertical = np.zeros_like(grid.vertical_usage)
    for path in paths:
        for a, b in zip(path, path[1:]):
            kind, ex, ey = grid.edge_between(a, b)
            if kind == "h":
                horizontal[ex, ey] += 1
            else:
                vertical[ex, ey] += 1
    return horizontal, vertical


def _check_routing(
    mapping: MappingResult,
    placement: Placement,
    routing,
    violations: List[Violation],
) -> None:
    netlist = mapping.netlist
    grid = routing.grid
    indices = [w.wire_index for w in routing.wires]
    index_counts = Counter(indices)
    duplicates = sorted(i for i, c in index_counts.items() if c > 1)
    missing = sorted(set(range(netlist.num_wires)) - set(indices))
    unknown = sorted(i for i in index_counts if not 0 <= i < netlist.num_wires)
    _add_capped(
        violations,
        "physical",
        (f"wire {i} is routed {index_counts[i]} times" for i in duplicates),
        "multiply-routed wires",
    )
    _add_capped(
        violations,
        "physical",
        (f"wire {i} ({netlist.wires[i].name!r}) has no route" for i in missing),
        "unrouted wires",
    )
    _add_capped(
        violations,
        "physical",
        (f"routed wire index {i} does not exist in the netlist" for i in unknown),
        "unknown wire indices",
    )

    # On-chip containment: every cell extent inside the routed region.
    x0, y0 = grid.origin
    x1 = x0 + grid.nx * grid.bin_um
    y1 = y0 + grid.ny * grid.bin_um
    eps = 1e-6
    if placement.num_cells == netlist.num_cells:
        half_w = placement.widths / 2.0
        half_h = placement.heights / 2.0
        outside = np.nonzero(
            (placement.x - half_w < x0 - eps)
            | (placement.x + half_w > x1 + eps)
            | (placement.y - half_h < y0 - eps)
            | (placement.y + half_h > y1 + eps)
        )[0]
        _add_capped(
            violations,
            "physical",
            (
                f"cell {netlist.cells[i].name!r} extends outside the chip "
                f"region [{x0:.1f}, {x1:.1f}]×[{y0:.1f}, {y1:.1f}] µm"
                for i in outside
            ),
            "off-chip cells",
        )

    pin_mismatches: List[str] = []
    broken_paths: List[str] = []
    length_errors: List[str] = []
    multi_bin_paths = []
    for routed in routing.wires:
        if not 0 <= routed.wire_index < netlist.num_wires or not routed.path:
            if not routed.path:
                broken_paths.append(f"wire {routed.wire_index} has an empty path")
            continue
        wire = netlist.wires[routed.wire_index]
        sx, sy = placement.x[wire.source], placement.y[wire.source]
        tx, ty = placement.x[wire.target], placement.y[wire.target]
        start = grid.bin_of(float(sx), float(sy))
        goal = grid.bin_of(float(tx), float(ty))
        path = [tuple(b) for b in routed.path]
        if len(path) == 1:
            if start != goal or path[0] != start:
                pin_mismatches.append(
                    f"wire {routed.wire_index} ({wire.name!r}) claims a same-bin "
                    f"route at {path[0]} but its pins sit in {start} and {goal}"
                )
            expected_length = abs(sx - tx) + abs(sy - ty)
        else:
            if path[0] != start or path[-1] != goal:
                pin_mismatches.append(
                    f"wire {routed.wire_index} ({wire.name!r}) routes "
                    f"{path[0]}→{path[-1]} but its pins sit in {start} and {goal}"
                )
            adjacency_ok = True
            for a, b in zip(path, path[1:]):
                if abs(a[0] - b[0]) + abs(a[1] - b[1]) != 1:
                    adjacency_ok = False
                    break
                if not (0 <= b[0] < grid.nx and 0 <= b[1] < grid.ny):
                    adjacency_ok = False
                    break
            if not adjacency_ok:
                broken_paths.append(
                    f"wire {routed.wire_index} ({wire.name!r}) has a "
                    "non-contiguous or off-grid bin path"
                )
                continue
            multi_bin_paths.append(path)
            expected_length = grid.path_length_um(path)
        if abs(routed.length_um - expected_length) > 1e-6 + 1e-9 * expected_length:
            length_errors.append(
                f"wire {routed.wire_index} records length {routed.length_um:.3f} µm, "
                f"its path measures {expected_length:.3f} µm"
            )
    _add_capped(violations, "physical", pin_mismatches, "pin-set mismatches")
    _add_capped(violations, "physical", broken_paths, "broken paths")
    _add_capped(violations, "physical", length_errors, "wirelength mismatches")

    # Capacity accounting: the grid's usage counters must equal an
    # independent tally of the committed paths, and no edge may exceed its
    # (virtual, possibly relaxed) capacity unless the router explicitly
    # reported overflow wires.
    horizontal, vertical = _recompute_usage(grid, multi_bin_paths)
    if not duplicates and not missing and not unknown and not broken_paths:
        if not (
            np.array_equal(horizontal, grid.horizontal_usage)
            and np.array_equal(vertical, grid.vertical_usage)
        ):
            violations.append(
                Violation(
                    "physical",
                    "routing grid usage counters disagree with the committed "
                    "paths (stale or corrupted congestion bookkeeping)",
                    {},
                )
            )
    over = int(
        np.count_nonzero(horizontal > grid.horizontal_capacity)
        + np.count_nonzero(vertical > grid.vertical_capacity)
    )
    if over > 0 and routing.overflow_wires == 0:
        violations.append(
            Violation(
                "physical",
                f"{over} routing edge(s) exceed their virtual capacity but the "
                "router reported zero overflow wires",
                {"edges_over_capacity": over},
            )
        )


def check_physical(
    mapping: MappingResult,
    placement: Placement,
    routing=None,
    overlap_tolerance: float = 5e-3,
) -> CheckResult:
    """Placement legality plus routing soundness for a placed design.

    ``overlap_tolerance`` bounds residual post-legalization overlap as a
    fraction of total cell area (the push-apart fallback legalizer accepts
    up to ~0.5 % virtual overlap; the primary grid-snap path yields 0).
    """
    violations: List[Violation] = []
    _check_placement(mapping, placement, violations, overlap_tolerance)
    if routing is not None and placement.num_cells == mapping.netlist.num_cells:
        _check_routing(mapping, placement, routing, violations)
    stats = {
        "cells": placement.num_cells,
        "overlap_ratio": round(placement.overlap_ratio(), 6),
    }
    if routing is not None:
        stats["routed_wires"] = len(routing.wires)
        stats["overflow_wires"] = routing.overflow_wires
    return CheckResult(name="physical", violations=violations, stats=stats)


# ----------------------------------------------------------------------
# 4. Functional equivalence — hybrid simulation matches the ideal network
# ----------------------------------------------------------------------
def check_functional(
    mapping: MappingResult,
    hopfield=None,
    probes: int = 6,
    numeric_tolerance: float = 1e-6,
    max_patterns: int = 5,
    max_recall_steps: int = 50,
    rng: RngLike = 0,
) -> CheckResult:
    """The mapped hardware computes what the source network computes.

    With an ideal device model the hybrid simulator's differential read is
    exact, so ``sim.compute(x)`` must match ``x @ W`` to floating-point
    precision on random ±1 probes.  When a :class:`HopfieldNetwork` is
    supplied, its weights drive the comparison and stored-pattern recall
    is additionally replayed: at every step of the software recall
    trajectory the hardware's activations must numerically match the ideal
    ``W @ state``.  The comparison deliberately follows the *software*
    state sequence instead of comparing final recalled states — synchronous
    Hopfield dynamics are chaotic at exactly-zero activations (Hebbian
    weights are multiples of 1/N, so ties are common), and a tie broken
    differently by floating-point summation order would diverge the
    trajectories without any hardware defect.  Per-step activation
    equivalence is the invariant the hardware can actually guarantee.
    """
    from repro.hardware.simulation import HybridNcsSimulator

    violations: List[Violation] = []
    n = mapping.network.size
    if hopfield is not None and hopfield.size != n:
        violations.append(
            Violation(
                "functional",
                f"hopfield network has {hopfield.size} neurons, mapping has {n}",
                {},
            )
        )
        return CheckResult(name="functional", violations=violations)
    weights = (
        hopfield.weights if hopfield is not None else mapping.network.matrix.astype(float)
    )
    simulator = HybridNcsSimulator(mapping, signed_weights=weights)
    generator = ensure_rng(rng)
    max_error = 0.0
    scale = max(1.0, float(np.max(np.abs(weights))) * n)
    for probe_index in range(max(1, probes)):
        x = generator.choice([-1.0, 1.0], size=n)
        ideal = x @ weights
        actual = simulator.compute(x)
        error = float(np.max(np.abs(actual - ideal))) / scale
        max_error = max(max_error, error)
        if error > numeric_tolerance:
            violations.append(
                Violation(
                    "functional",
                    f"probe {probe_index}: hardware evaluation deviates from "
                    f"x @ W by {error:.3e} relative (tolerance "
                    f"{numeric_tolerance:.1e})",
                    {"probe": probe_index, "error": error},
                )
            )
    stats = {"probes": probes, "max_relative_error": float(f"{max_error:.3e}")}

    if hopfield is not None and len(hopfield.patterns):
        from repro.networks.patterns import corrupt_pattern

        worst_recall_error = 0.0
        steps_walked = 0
        for pattern_index, pattern in enumerate(hopfield.patterns[:max_patterns]):
            state = corrupt_pattern(pattern, 0.05, rng=generator).astype(float)
            for step in range(max_recall_steps):
                ideal = weights @ state
                actual = simulator.compute(state)
                error = float(np.max(np.abs(actual - ideal))) / scale
                worst_recall_error = max(worst_recall_error, error)
                steps_walked += 1
                if error > numeric_tolerance:
                    violations.append(
                        Violation(
                            "functional",
                            f"pattern {pattern_index}, recall step {step}: "
                            f"hardware activations deviate from the ideal "
                            f"network by {error:.3e} relative (tolerance "
                            f"{numeric_tolerance:.1e})",
                            {"pattern": pattern_index, "step": step, "error": error},
                        )
                    )
                    break
                new_state = np.where(ideal >= 0.0, 1.0, -1.0)
                if np.array_equal(new_state, state):
                    break
                state = new_state
        stats["recall_steps"] = steps_walked
        stats["max_recall_error"] = float(f"{worst_recall_error:.3e}")
    return CheckResult(name="functional", violations=violations, stats=stats)
