"""Top-level entry points: :func:`verify_mapping` and :func:`verify_flow`."""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

from repro.mapping.netlist import MappingResult
from repro.physical.layout import Placement
from repro.utils.rng import RngLike
from repro.verify.checks import (
    check_coverage,
    check_functional,
    check_hardware,
    check_physical,
)
from repro.verify.report import CheckResult, VerificationReport

#: Canonical check names, in execution order.
CHECK_NAMES: Tuple[str, ...] = ("coverage", "hardware", "physical", "functional")


def _select_checks(checks: Optional[Iterable[str]]) -> Sequence[str]:
    if checks is None:
        return CHECK_NAMES
    selected = tuple(checks)
    unknown = [name for name in selected if name not in CHECK_NAMES]
    if unknown:
        raise ValueError(f"unknown check(s) {unknown}; valid names: {list(CHECK_NAMES)}")
    return tuple(name for name in CHECK_NAMES if name in selected)


def verify_mapping(
    mapping: MappingResult,
    placement: Optional[Placement] = None,
    routing=None,
    hopfield=None,
    checks: Optional[Iterable[str]] = None,
    overlap_tolerance: float = 5e-3,
    probes: int = 6,
    rng: RngLike = 0,
) -> VerificationReport:
    """Independently verify a mapped (and optionally implemented) design.

    Parameters
    ----------
    mapping:
        The hybrid mapping under test (AutoNCS or FullCro).
    placement / routing:
        Physical artifacts for the **physical** check; when omitted, that
        check is reported as skipped rather than failed.
    hopfield:
        Optional :class:`~repro.networks.hopfield.HopfieldNetwork` whose
        weights the mapping implements; enables the stored-pattern recall
        comparison of the **functional** check.
    checks:
        Optional subset of :data:`CHECK_NAMES` to run (default: all).
    overlap_tolerance:
        Acceptable residual post-legalization overlap ratio.
    probes:
        Random ±1 probe vectors for the functional equivalence test.
    rng:
        Seed/generator for the functional probes (default: fixed seed 0,
        so verification itself is deterministic).

    Returns
    -------
    VerificationReport
        Per-check pass/fail with pointed violation messages.  The report
        never raises; call :meth:`VerificationReport.raise_if_failed` for
        an exception-style API.
    """
    selected = _select_checks(checks)
    results = []
    for name in selected:
        if name == "coverage":
            results.append(check_coverage(mapping))
        elif name == "hardware":
            results.append(check_hardware(mapping))
        elif name == "physical":
            if placement is None:
                results.append(
                    CheckResult(
                        name="physical",
                        skipped=True,
                        reason="no placement supplied",
                    )
                )
            else:
                results.append(
                    check_physical(
                        mapping,
                        placement,
                        routing,
                        overlap_tolerance=overlap_tolerance,
                    )
                )
        elif name == "functional":
            results.append(
                check_functional(mapping, hopfield=hopfield, probes=probes, rng=rng)
            )
    return VerificationReport(
        target=mapping.name,
        checks=results,
        metadata={
            "network": mapping.network.name,
            "neurons": mapping.network.size,
            "connections": mapping.network.num_connections,
        },
    )


def verify_flow(
    flow,
    hopfield=None,
    checks: Optional[Iterable[str]] = None,
    overlap_tolerance: float = 5e-3,
    probes: int = 6,
    rng: RngLike = 0,
) -> VerificationReport:
    """Verify a complete flow result, artifacts included.

    ``flow`` may be an :class:`~repro.core.autoncs.AutoNcsResult`, a
    :class:`~repro.physical.layout.PhysicalDesign`, or a bare
    :class:`~repro.mapping.netlist.MappingResult`; placement and routing
    are pulled from the artifact when present so all four checks run.
    """
    design = getattr(flow, "design", flow)
    mapping = getattr(design, "mapping", design)
    if not isinstance(mapping, MappingResult):
        raise TypeError(
            "verify_flow expects an AutoNcsResult, PhysicalDesign or "
            f"MappingResult, got {type(flow).__name__}"
        )
    placement = getattr(design, "placement", None)
    routing = getattr(design, "routing", None)
    return verify_mapping(
        mapping,
        placement=placement,
        routing=routing,
        hopfield=hopfield,
        checks=checks,
        overlap_tolerance=overlap_tolerance,
        probes=probes,
        rng=rng,
    )
