"""Structured verification outcomes: violations, per-check results, reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class Violation:
    """One concrete broken invariant.

    Attributes
    ----------
    check:
        Name of the check that found it (``"coverage"``, ``"hardware"``,
        ``"physical"`` or ``"functional"``).
    message:
        A pointed, human-readable description naming the offending object
        (connection pair, instance index, wire index, …).
    context:
        Machine-readable details for tests and tooling.
    """

    check: str
    message: str
    context: dict = field(default_factory=dict, compare=False, hash=False)

    def __str__(self) -> str:
        return f"[{self.check}] {self.message}"


@dataclass
class CheckResult:
    """Outcome of one verification check."""

    name: str
    violations: List[Violation] = field(default_factory=list)
    stats: Dict[str, object] = field(default_factory=dict)
    skipped: bool = False
    reason: str = ""

    @property
    def passed(self) -> bool:
        """True when the check ran and found no violations."""
        return not self.skipped and not self.violations

    @property
    def status(self) -> str:
        """``"pass"``, ``"fail"`` or ``"skip"``."""
        if self.skipped:
            return "skip"
        return "pass" if not self.violations else "fail"


class VerificationError(RuntimeError):
    """A verification run found violations.

    Carries the full :class:`VerificationReport` as ``.report`` so callers
    can inspect exactly which invariants broke.
    """

    def __init__(self, report: "VerificationReport") -> None:
        failed = ", ".join(c.name for c in report.checks if c.status == "fail")
        first = report.violations[0] if report.violations else None
        detail = f"; first violation: {first}" if first is not None else ""
        super().__init__(
            f"verification of {report.target!r} failed "
            f"({len(report.violations)} violation(s) in: {failed}){detail}"
        )
        self.report = report


@dataclass
class VerificationReport:
    """Every check's outcome for one verified design.

    ``passed`` requires every executed check to be clean; skipped checks
    (e.g. the physical check when no placement/routing was supplied) do
    not fail the report but are visible in :meth:`format`.
    """

    target: str
    checks: List[CheckResult] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        """True when no executed check found a violation."""
        return all(c.status != "fail" for c in self.checks)

    @property
    def violations(self) -> List[Violation]:
        """All violations over all checks, in check order."""
        return [v for c in self.checks for v in c.violations]

    def check(self, name: str) -> CheckResult:
        """Look up one check's result by name."""
        for result in self.checks:
            if result.name == name:
                return result
        raise KeyError(
            f"no check named {name!r} in this report "
            f"(have: {[c.name for c in self.checks]})"
        )

    def raise_if_failed(self) -> "VerificationReport":
        """Raise :class:`VerificationError` when any check failed; else self."""
        if not self.passed:
            raise VerificationError(self)
        return self

    def summary(self) -> Dict[str, object]:
        """Scalar summary for result metadata and logs."""
        return {
            "target": self.target,
            "passed": self.passed,
            "violations": len(self.violations),
            "checks": {c.name: c.status for c in self.checks},
        }

    def to_dict(self) -> Dict[str, object]:
        """JSON-compatible dict (the repo-wide result-object surface)."""
        return {
            **self.summary(),
            "check_details": [
                {
                    "name": c.name,
                    "status": c.status,
                    "stats": dict(c.stats),
                    "reason": c.reason,
                    "violations": [
                        {"check": v.check, "message": v.message, "context": dict(v.context)}
                        for v in c.violations
                    ],
                }
                for c in self.checks
            ],
            "metadata": dict(self.metadata),
        }

    def format_table(self) -> str:
        """Alias of :meth:`format` (the repo-wide result-object surface)."""
        return self.format()

    def format(self, max_violations_per_check: Optional[int] = 10) -> str:
        """Readable multi-line report (CLI output).

        ``max_violations_per_check`` truncates long violation lists per
        check (``None`` prints everything).
        """
        verdict = "PASS" if self.passed else "FAIL"
        lines = [f"verification of {self.target}: {verdict}"]
        for result in self.checks:
            marker = {"pass": "ok  ", "fail": "FAIL", "skip": "skip"}[result.status]
            stats = ""
            if result.stats:
                stats = "  (" + ", ".join(
                    f"{k}={v}" for k, v in sorted(result.stats.items())
                ) + ")"
            note = f"  [{result.reason}]" if result.skipped and result.reason else ""
            lines.append(f"  {marker}  {result.name:<10}{stats}{note}")
            shown = result.violations
            if max_violations_per_check is not None:
                shown = shown[:max_violations_per_check]
            for violation in shown:
                lines.append(f"        - {violation.message}")
            hidden = len(result.violations) - len(shown)
            if hidden > 0:
                lines.append(f"        … and {hidden} more violation(s)")
        return "\n".join(lines)
