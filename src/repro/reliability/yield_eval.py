"""Monte-Carlo functional-yield evaluation of mapped designs (extension).

``evaluate_yield`` closes the reliability loop the paper motivates in
Sec. 2.1: sample *K* defect maps per defect rate, replay Hopfield recall
through :class:`~repro.hardware.simulation.HybridNcsSimulator` on the faulty
hardware, and report the fraction of sampled chips that still recognize
their stored patterns — before and after the fault-aware repair pass.

A chip is *functional* when its hardware recognition rate reaches the
threshold (default 0.9, the paper's testbench bar).  Unrepaired and
repaired measurements of one sampled chip share the same probe sequence,
so their comparison is paired, not an artifact of probe luck.

Two execution properties matter at Monte-Carlo scale:

* the defect-independent programming of the mapped design (the
  per-connection weight-plane assembly) is compiled **once** and shared
  across every sampled chip — only defect sampling, repair and recall
  replay run per trial;
* trials are independent jobs: their RNG streams are derived up front in
  the driver (in the exact order a serial loop would draw them), so
  ``n_jobs > 1`` fans the chips out over worker processes through
  :class:`repro.runtime.Runner` with bitwise-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.hardware.simulation import (
    IDEAL,
    HybridNcsSimulator,
    HybridProgram,
    NonIdealityModel,
)
from repro.mapping.netlist import MappingResult
from repro.networks.hopfield import HopfieldNetwork
from repro.networks.patterns import corrupt_pattern
from repro.observability import get_recorder
from repro.reliability.defects import DefectRates, sample_defect_map
from repro.reliability.repair import repair_mapping
from repro.utils.rng import RngLike, ensure_rng, spawn_rng
from repro.utils.validation import check_probability


def hardware_recognition_rate(
    simulator: HybridNcsSimulator,
    patterns: np.ndarray,
    flip_fraction: float = 0.05,
    trials_per_pattern: int = 1,
    match_threshold: float = 0.9,
    rng: RngLike = None,
) -> float:
    """Recognition rate of Hopfield recall running on simulated hardware.

    Mirrors :func:`repro.networks.hopfield.recognition_rate` but drives
    :meth:`HybridNcsSimulator.recall` instead of the software dynamics.
    """
    check_probability("flip_fraction", flip_fraction)
    check_probability("match_threshold", match_threshold)
    if trials_per_pattern < 1:
        raise ValueError("trials_per_pattern must be >= 1")
    rng = ensure_rng(rng)
    successes = 0
    total = 0
    for pattern in np.asarray(patterns):
        for _ in range(trials_per_pattern):
            probe = corrupt_pattern(pattern, flip_fraction, rng=rng)
            recalled = simulator.recall(probe)
            agreement = float(np.mean(recalled == pattern))
            if max(agreement, 1.0 - agreement) >= match_threshold:
                successes += 1
            total += 1
    return successes / float(total)


@dataclass
class YieldPoint:
    """Monte-Carlo outcome at one defect rate."""

    rates: DefectRates
    samples: int
    functional_yield_unrepaired: float
    functional_yield_repaired: float
    mean_recognition_unrepaired: float
    mean_recognition_repaired: float
    mean_connections_recovered: float
    mean_synapses_added: float

    @property
    def yield_gain(self) -> float:
        """Functional-yield improvement delivered by repair."""
        return self.functional_yield_repaired - self.functional_yield_unrepaired


@dataclass
class YieldCurve:
    """Functional-yield and recognition-rate curves vs defect rate."""

    points: List[YieldPoint]
    recognition_threshold: float
    metadata: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-compatible dict (the repo-wide result-object surface)."""
        return {
            "recognition_threshold": self.recognition_threshold,
            "points": [
                {
                    "cell_stuck_off": p.rates.cell_stuck_off,
                    "samples": p.samples,
                    "functional_yield_unrepaired": p.functional_yield_unrepaired,
                    "functional_yield_repaired": p.functional_yield_repaired,
                    "mean_recognition_unrepaired": p.mean_recognition_unrepaired,
                    "mean_recognition_repaired": p.mean_recognition_repaired,
                    "mean_connections_recovered": p.mean_connections_recovered,
                    "mean_synapses_added": p.mean_synapses_added,
                    "yield_gain": p.yield_gain,
                }
                for p in self.points
            ],
            "metadata": dict(self.metadata),
        }

    def format_table(self) -> str:
        """Fixed-width text table (benchmark/CLI output)."""
        header = (
            f"{'stuck-off':>10} {'yield(raw)':>11} {'yield(rep)':>11} "
            f"{'recog(raw)':>11} {'recog(rep)':>11} {'recovered':>10} {'+synapses':>10}"
        )
        lines = [header, "-" * len(header)]
        for p in self.points:
            lines.append(
                f"{p.rates.cell_stuck_off:>10.3f} "
                f"{p.functional_yield_unrepaired:>11.2%} "
                f"{p.functional_yield_repaired:>11.2%} "
                f"{p.mean_recognition_unrepaired:>11.2%} "
                f"{p.mean_recognition_repaired:>11.2%} "
                f"{p.mean_connections_recovered:>10.1f} "
                f"{p.mean_synapses_added:>10.1f}"
            )
        return "\n".join(lines)


@dataclass
class TrialSpec:
    """One sampled chip: which rate it belongs to and its RNG streams.

    Specs are derived serially in the driver — in the exact order the
    historical serial loop drew them — so executing the trials in any
    order, on any number of workers, reproduces the serial results.
    """

    rate_index: int
    sample_index: int
    rates: DefectRates
    defect_rng: np.random.Generator
    sim_rng: np.random.Generator
    probe_seed: int


@dataclass
class TrialOutcome:
    """What one sampled chip measured."""

    rate_index: int
    sample_index: int
    recognition_unrepaired: float
    recognition_repaired: float
    connections_recovered: float
    synapses_added: float


def derive_trial_specs(
    rates_list: Sequence[DefectRates], samples: int, rng: RngLike
) -> List[TrialSpec]:
    """Spawn the per-trial RNG streams (serial order, parallel-safe)."""
    specs: List[TrialSpec] = []
    rate_rngs = spawn_rng(rng, len(rates_list))
    for rate_index, (rates, rate_rng) in enumerate(zip(rates_list, rate_rngs)):
        for sample_index in range(samples):
            defect_rng, sim_rng = spawn_rng(rate_rng, 2)
            # One seed drives the probes of both measurements: the
            # unrepaired/repaired comparison is paired per sampled chip.
            probe_seed = int(rate_rng.integers(0, 2**63 - 1))
            specs.append(
                TrialSpec(
                    rate_index=rate_index,
                    sample_index=sample_index,
                    rates=rates,
                    defect_rng=defect_rng,
                    sim_rng=sim_rng,
                    probe_seed=probe_seed,
                )
            )
    return specs


def execute_trial(
    mapping: MappingResult,
    hopfield: HopfieldNetwork,
    spec: TrialSpec,
    flip_fraction: float = 0.05,
    trials_per_pattern: int = 1,
    spare_instances: int = 0,
    model: NonIdealityModel = IDEAL,
    program: Optional[HybridProgram] = None,
    assert_legal: bool = False,
) -> TrialOutcome:
    """Measure one sampled chip: defect map → raw recall → repair → recall.

    ``program`` is the precompiled defect-independent programming of
    ``mapping`` (compiled on the fly when omitted, e.g. in a worker
    process that received only the mapping).

    ``assert_legal=True`` runs the independent coverage + hardware checks
    of :mod:`repro.verify` on the repaired mapping — every connection
    still realized exactly once and no connection left on a dead cell of
    its bound physical crossbar — raising
    :class:`~repro.verify.VerificationError` on violation.
    """
    if program is None:
        program = HybridProgram.compile(mapping, hopfield.weights)
    defect_map = sample_defect_map(
        mapping, spec.rates, rng=spec.defect_rng, spare_instances=spare_instances
    )
    raw_sim = HybridNcsSimulator(
        mapping,
        signed_weights=hopfield.weights,
        model=model,
        defect_map=defect_map,
        rng=spec.sim_rng,
        program=program,
    )
    rate_raw = hardware_recognition_rate(
        raw_sim,
        hopfield.patterns,
        flip_fraction=flip_fraction,
        trials_per_pattern=trials_per_pattern,
        rng=spec.probe_seed,
    )
    repaired, report = repair_mapping(mapping, defect_map)
    if assert_legal:
        # Imported lazily so worker processes that never assert skip the
        # verifier import entirely.
        from repro.verify import verify_mapping

        verify_mapping(repaired, checks=("coverage", "hardware")).raise_if_failed()
    rep_sim = HybridNcsSimulator(
        repaired,
        signed_weights=hopfield.weights,
        model=model,
        defect_map=repaired.metadata["defect_map"],
        rng=spec.sim_rng,
    )
    rate_rep = hardware_recognition_rate(
        rep_sim,
        hopfield.patterns,
        flip_fraction=flip_fraction,
        trials_per_pattern=trials_per_pattern,
        rng=spec.probe_seed,
    )
    return TrialOutcome(
        rate_index=spec.rate_index,
        sample_index=spec.sample_index,
        recognition_unrepaired=rate_raw,
        recognition_repaired=rate_rep,
        connections_recovered=float(report.connections_recovered),
        synapses_added=float(report.synapses_added),
    )


def evaluate_yield(
    hopfield: HopfieldNetwork,
    mapping: MappingResult,
    defect_rates: Sequence,
    samples: int = 8,
    recognition_threshold: float = 0.9,
    flip_fraction: float = 0.05,
    trials_per_pattern: int = 1,
    spare_instances: int = 0,
    model: NonIdealityModel = IDEAL,
    rng: RngLike = None,
    n_jobs: int = 1,
    events=None,
    resilience=None,
    assert_legal: bool = False,
) -> YieldCurve:
    """Monte-Carlo yield of ``mapping`` under defects, before/after repair.

    Parameters
    ----------
    hopfield:
        The Hopfield network whose weights and patterns the hardware
        implements (its topology must match ``mapping.network``).
    defect_rates:
        Defect-rate sweep; each entry is a :class:`DefectRates` or a scalar
        stuck-off cell probability.
    samples:
        Defect maps (chips) sampled per rate.
    spare_instances:
        Spare physical crossbars the repair pass may re-bind clusters onto.
    model:
        Additional statistical non-idealities layered on every sample.
    n_jobs:
        Worker processes for the Monte-Carlo trials; results are
        bitwise-identical for any value (per-trial RNG streams are
        derived up front).
    events:
        Optional :class:`repro.runtime.EventLog` receiving per-trial
        job events.
    resilience:
        Optional :class:`~repro.runtime.resilience.ResilienceConfig`
        adding per-trial retries/timeouts; trials then run through the
        runtime engine even at ``n_jobs=1``.  Retried trials replay
        their pre-derived RNG streams, so the curve is unchanged.
    assert_legal:
        Run the independent post-repair legality checks (coverage +
        hardware, see :mod:`repro.verify`) on every repaired chip and
        raise :class:`~repro.verify.VerificationError` on violation.
    """
    if hopfield.size != mapping.network.size:
        raise ValueError(
            f"hopfield network has {hopfield.size} neurons, "
            f"mapping has {mapping.network.size}"
        )
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    check_probability("recognition_threshold", recognition_threshold)
    rates_list = [DefectRates.coerce(r) for r in defect_rates]
    if not rates_list:
        raise ValueError("defect_rates must be non-empty")

    specs = derive_trial_specs(rates_list, samples, rng)
    trial_kwargs = dict(
        flip_fraction=flip_fraction,
        trials_per_pattern=trials_per_pattern,
        spare_instances=spare_instances,
        model=model,
        assert_legal=assert_legal,
    )
    recorder = get_recorder()
    with recorder.span(
        "reliability.evaluate_yield",
        rates=len(rates_list),
        samples=samples,
        n_jobs=n_jobs,
    ):
        if n_jobs == 1 and resilience is None:
            # The defect-independent programming of the mapped design is
            # compiled once and shared by every chip (the hoist that makes
            # the Monte-Carlo loop ~O(trials) in recall work, not assembly).
            program = HybridProgram.compile(mapping, hopfield.weights)
            outcomes = [
                execute_trial(mapping, hopfield, spec, program=program, **trial_kwargs)
                for spec in specs
            ]
        else:
            # Imported lazily: repro.runtime.runner registers the
            # "yield_trial" executor, which calls back into execute_trial.
            from repro.runtime import Job, Runner

            jobs = [
                Job(
                    kind="yield_trial",
                    label=f"rate={spec.rates.cell_stuck_off:g} chip={spec.sample_index}",
                    payload={
                        "mapping": mapping,
                        "hopfield": hopfield,
                        "spec": spec,
                        **trial_kwargs,
                    },
                )
                for spec in specs
            ]
            runner = Runner(n_jobs=n_jobs, events=events, resilience=resilience)
            results = runner.run(jobs)
            failed = [r for r in results if r.failure is not None]
            if failed:
                # The yield statistics need every trial; a collected
                # (non-fail-fast) failure still has to surface here.
                first = failed[0].failure
                raise RuntimeError(
                    f"yield trial {first.label!r} failed ({first.failure} "
                    f"after {first.attempts} attempt(s)): {first.message}"
                )
            outcomes = [result.value for result in results]
        recorder.count("reliability.yield_trials", len(specs))
        if recorder.enabled:
            recorder.observe_many(
                "reliability.recognition_repaired",
                [o.recognition_repaired for o in outcomes],
            )

    points: List[YieldPoint] = []
    for rate_index, rates in enumerate(rates_list):
        chips = [o for o in outcomes if o.rate_index == rate_index]
        recog_raw = [o.recognition_unrepaired for o in chips]
        recog_rep = [o.recognition_repaired for o in chips]
        points.append(
            YieldPoint(
                rates=rates,
                samples=samples,
                functional_yield_unrepaired=(
                    sum(r >= recognition_threshold for r in recog_raw) / samples
                ),
                functional_yield_repaired=(
                    sum(r >= recognition_threshold for r in recog_rep) / samples
                ),
                mean_recognition_unrepaired=float(np.mean(recog_raw)),
                mean_recognition_repaired=float(np.mean(recog_rep)),
                mean_connections_recovered=float(
                    np.mean([o.connections_recovered for o in chips])
                ),
                mean_synapses_added=float(np.mean([o.synapses_added for o in chips])),
            )
        )
    return YieldCurve(
        points=points,
        recognition_threshold=recognition_threshold,
        metadata={
            "samples": samples,
            "spare_instances": spare_instances,
            "flip_fraction": flip_fraction,
            "trials_per_pattern": trials_per_pattern,
            "n_jobs": n_jobs,
            "assert_legal": assert_legal,
        },
    )
