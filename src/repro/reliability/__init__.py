"""Reliability: defect maps, fault-aware repair, Monte-Carlo yield (extension).

The paper caps crossbars at 64×64 because defects and variation destroy
reliability at scale (Sec. 2.1, ref [6]); this package feeds that concern
back into the EDA flow:

* :mod:`~repro.reliability.defects` — sampled per-instance stuck-at cells
  and dead row/column lines (:class:`DefectMap`).
* :mod:`~repro.reliability.repair` — re-bind clusters over the physical
  crossbar pool (plus spares), demote unrepairable connections to discrete
  synapses (:func:`repair_mapping`, :class:`RepairReport`).
* :mod:`~repro.reliability.yield_eval` — Monte-Carlo functional yield via
  Hopfield recall on the simulated faulty hardware (:func:`evaluate_yield`).
"""

from repro.reliability.defects import (
    DefectMap,
    DefectRates,
    InstanceDefects,
    count_lost_connections,
    local_cells,
    lost_connections,
    sample_defect_map,
    sample_instance_defects,
)
from repro.reliability.repair import RepairReport, repair_mapping
from repro.reliability.yield_eval import (
    YieldCurve,
    YieldPoint,
    evaluate_yield,
    hardware_recognition_rate,
)

__all__ = [
    "DefectMap",
    "DefectRates",
    "InstanceDefects",
    "RepairReport",
    "YieldCurve",
    "YieldPoint",
    "count_lost_connections",
    "evaluate_yield",
    "hardware_recognition_rate",
    "local_cells",
    "lost_connections",
    "repair_mapping",
    "sample_defect_map",
    "sample_instance_defects",
]
