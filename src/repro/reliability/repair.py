"""Fault-aware mapping repair (extension).

Given a :class:`~repro.reliability.defects.DefectMap`, the repair pass makes
a mapped design functional again in three escalating steps:

1. **Re-binding** — clusters are logical; which *physical* crossbar serves
   each cluster is free.  A greedy swap/move search over the physical pool
   (mapped instances plus optional spares) re-binds clusters so that as few
   connections as possible land on dead cells.
2. **Demotion** — connections still on dead cells after re-binding are
   demoted to discrete synapses (the hybrid substrate's escape hatch; the
   same medium ISC uses for outliers).
3. **Drop** — an instance that loses *all* its connections (e.g. a fully
   defective crossbar with no usable spare) is removed entirely and its
   whole cluster lives on synapses.

The result is a new, validated :class:`~repro.mapping.netlist.MappingResult`
plus a :class:`RepairReport` quantifying connections lost/recovered,
synapses added and the area delta.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.mapping.netlist import CrossbarInstance, MappingResult, build_netlist
from repro.reliability.defects import (
    DefectMap,
    DefectRates,
    count_lost_connections,
    lost_connections,
)


@dataclass
class RepairReport:
    """What the repair pass did to a mapped design.

    ``connections_lost_before`` counts connections on dead cells under the
    identity binding (cluster *k* on physical crossbar *k*);
    ``connections_lost_after_rebinding`` counts them under the repaired
    binding — those survivors are demoted to synapses, so the repaired
    design implements every connection functionally.
    """

    rates: DefectRates
    connections_lost_before: int
    connections_lost_after_rebinding: int
    synapses_added: int
    clusters_rebound: int
    clusters_demoted: int
    spares_used: int
    area_before_um2: float
    area_after_um2: float
    binding: Tuple[int, ...]
    metadata: dict = field(default_factory=dict)

    @property
    def connections_recovered(self) -> int:
        """Connections rescued by re-binding alone."""
        return self.connections_lost_before - self.connections_lost_after_rebinding

    @property
    def area_delta_um2(self) -> float:
        """Cell-area change (synapses added, crossbars dropped or resized)."""
        return self.area_after_um2 - self.area_before_um2

    def summary(self) -> Dict[str, float]:
        """Scalar summary for logs and experiment tables."""
        return {
            "lost_before": self.connections_lost_before,
            "lost_after_rebinding": self.connections_lost_after_rebinding,
            "recovered": self.connections_recovered,
            "synapses_added": self.synapses_added,
            "clusters_rebound": self.clusters_rebound,
            "clusters_demoted": self.clusters_demoted,
            "spares_used": self.spares_used,
            "area_delta_um2": self.area_delta_um2,
        }


def _feasible(instance: CrossbarInstance, size: int) -> bool:
    """Can a physical crossbar of ``size`` host ``instance``'s cluster?"""
    return size >= max(len(instance.rows), len(instance.cols))


def _optimize_binding(
    instances: List[CrossbarInstance],
    defect_map: DefectMap,
    max_passes: int,
) -> List[int]:
    """Greedy swap/move search minimizing total connections on dead cells."""
    pool = defect_map.instances
    k_count = len(instances)
    binding = list(range(k_count))
    owner: Dict[int, int] = {p: k for k, p in enumerate(binding)}

    cost_cache: Dict[Tuple[int, int], int] = {}

    def cost(k: int, p: int) -> int:
        key = (k, p)
        if key not in cost_cache:
            cost_cache[key] = count_lost_connections(instances[k], pool[p])
        return cost_cache[key]

    for _ in range(max_passes):
        improved = False
        # Worst-afflicted clusters pick first each pass.
        order = sorted(range(k_count), key=lambda k: cost(k, binding[k]), reverse=True)
        for k in order:
            current = cost(k, binding[k])
            if current == 0:
                continue
            best_delta = 0
            best_move: Optional[Tuple[int, Optional[int]]] = None
            for p in range(len(pool)):
                if p == binding[k] or not _feasible(instances[k], pool[p].size):
                    continue
                k2 = owner.get(p)
                if k2 is None:
                    delta = cost(k, p) - current
                else:
                    if not _feasible(instances[k2], pool[binding[k]].size):
                        continue
                    delta = (cost(k, p) + cost(k2, binding[k])) - (
                        current + cost(k2, p)
                    )
                if delta < best_delta:
                    best_delta = delta
                    best_move = (p, k2)
            if best_move is not None:
                p, k2 = best_move
                old_p = binding[k]
                binding[k] = p
                owner[p] = k
                if k2 is None:
                    del owner[old_p]
                else:
                    binding[k2] = old_p
                    owner[old_p] = k2
                improved = True
        if not improved:
            break
    return binding


def repair_mapping(
    mapping: MappingResult,
    defect_map: Optional[DefectMap] = None,
    max_passes: int = 4,
) -> Tuple[MappingResult, RepairReport]:
    """Repair ``mapping`` against a defect map; returns the new mapping + report.

    ``defect_map`` defaults to the one attached to the mapping
    (``mapping.metadata['defect_map']``, see :meth:`DefectMap.attach`).  The
    repaired mapping carries its re-ordered defect map (entry *k* describes
    the physical crossbar now serving instance *k*) under the same metadata
    key, so a faulty-hardware simulation of the repaired design stays
    consistent with the binding.
    """
    if defect_map is None:
        defect_map = mapping.metadata.get("defect_map")
        if defect_map is None:
            raise ValueError(
                "no defect map given and none attached to the mapping; "
                "call sample_defect_map(...).attach(mapping) first"
            )
    if max_passes < 1:
        raise ValueError(f"max_passes must be >= 1, got {max_passes}")
    instances = mapping.instances
    if defect_map.num_instances < len(instances):
        raise ValueError(
            f"defect map covers {defect_map.num_instances} physical crossbars, "
            f"mapping has {len(instances)} instances"
        )

    lost_before = sum(
        count_lost_connections(instance, defect_map.instances[k])
        for k, instance in enumerate(instances)
    )

    binding = _optimize_binding(instances, defect_map, max_passes=max_passes)

    new_instances: List[CrossbarInstance] = []
    surviving_physical: List[int] = []
    demoted: List[Tuple[int, int]] = []
    lost_after = 0
    clusters_demoted = 0
    for k, instance in enumerate(instances):
        physical = defect_map.instances[binding[k]]
        lost = lost_connections(instance, physical)
        lost_after += len(lost)
        remaining = [pair for pair in instance.connections if pair not in set(lost)]
        demoted.extend(lost)
        if not remaining:
            clusters_demoted += 1
            continue  # whole cluster demoted; drop the instance
        new_instances.append(
            CrossbarInstance(
                rows=instance.rows,
                cols=instance.cols,
                size=physical.size,
                connections=tuple(remaining),
            )
        )
        surviving_physical.append(binding[k])

    new_synapses = list(mapping.synapse_connections) + demoted
    netlist = build_netlist(
        mapping.network.size, new_instances, new_synapses, mapping.library
    )
    repaired = MappingResult(
        name=f"{mapping.name}+repair",
        network=mapping.network,
        instances=new_instances,
        synapse_connections=new_synapses,
        netlist=netlist,
        library=mapping.library,
        metadata=dict(mapping.metadata),
    )
    repaired.metadata["physical_binding"] = tuple(surviving_physical)
    defect_map.subset(surviving_physical).attach(repaired)
    repaired.validate()

    report = RepairReport(
        rates=defect_map.rates,
        connections_lost_before=lost_before,
        connections_lost_after_rebinding=lost_after,
        synapses_added=len(demoted),
        clusters_rebound=sum(1 for k, p in enumerate(binding) if p != k),
        clusters_demoted=clusters_demoted,
        spares_used=sum(1 for p in binding if p >= len(instances)),
        area_before_um2=mapping.netlist.total_cell_area,
        area_after_um2=netlist.total_cell_area,
        binding=tuple(binding),
    )
    repaired.metadata["repair_report"] = report.summary()
    return repaired, report
