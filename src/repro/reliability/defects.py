"""Per-instance crossbar defect maps (extension; paper Sec. 2.1, ref [6]).

The paper caps crossbars at 64×64 because device defects, process variation
and IR-drop degrade reliability as arrays grow.  :mod:`repro.hardware.
simulation` models those non-idealities *statistically*; this module models
them *structurally*: a :class:`DefectMap` samples, per physical crossbar
instance, which cells are stuck (off or on) and which whole row/column
lines are dead.  A defect map is the input to the fault-aware repair pass
(:mod:`repro.reliability.repair`) and to Monte-Carlo yield evaluation
(:mod:`repro.reliability.yield_eval`).

Conventions
-----------
A connection ``(i, j)`` of a :class:`~repro.mapping.netlist.
CrossbarInstance` occupies the local cell ``(rows.index(i), cols.index(j))``
of its physical crossbar; a cell is *dead* when it is stuck (either way) or
lies on a dead row/column line.  A connection landing on a dead cell is
functionally lost until repaired.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.mapping.netlist import CrossbarInstance, MappingResult
from repro.utils.rng import RngLike, ensure_rng
from repro.utils.validation import check_probability


@dataclass(frozen=True)
class DefectRates:
    """Configurable defect rates for sampling a :class:`DefectMap`.

    Attributes
    ----------
    cell_stuck_off / cell_stuck_on:
        Per-cell probabilities of a stuck-at fault (stuck-off devices read
        as weight 0, stuck-on as full conductance).
    row_line / col_line:
        Per-line probabilities that an entire row/column line is dead
        (broken wordline/bitline — every cell on it is unusable).
    """

    cell_stuck_off: float = 0.0
    cell_stuck_on: float = 0.0
    row_line: float = 0.0
    col_line: float = 0.0

    def __post_init__(self) -> None:
        check_probability("cell_stuck_off", self.cell_stuck_off)
        check_probability("cell_stuck_on", self.cell_stuck_on)
        check_probability("row_line", self.row_line)
        check_probability("col_line", self.col_line)
        if self.cell_stuck_off + self.cell_stuck_on > 1.0:
            raise ValueError("cell_stuck_off + cell_stuck_on exceed 1")

    @property
    def any_defects(self) -> bool:
        """True when any rate is nonzero."""
        return (
            self.cell_stuck_off > 0.0
            or self.cell_stuck_on > 0.0
            or self.row_line > 0.0
            or self.col_line > 0.0
        )

    @classmethod
    def coerce(cls, value) -> "DefectRates":
        """Accept a :class:`DefectRates` or a scalar stuck-off cell rate."""
        if isinstance(value, cls):
            return value
        return cls(cell_stuck_off=float(value))


@dataclass
class InstanceDefects:
    """The sampled defects of one physical crossbar instance."""

    size: int
    stuck_off: np.ndarray
    stuck_on: np.ndarray
    dead_rows: np.ndarray
    dead_cols: np.ndarray

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"size must be >= 1, got {self.size}")
        s = self.size
        self.stuck_off = np.asarray(self.stuck_off, dtype=bool)
        self.stuck_on = np.asarray(self.stuck_on, dtype=bool)
        self.dead_rows = np.asarray(self.dead_rows, dtype=bool)
        self.dead_cols = np.asarray(self.dead_cols, dtype=bool)
        if self.stuck_off.shape != (s, s) or self.stuck_on.shape != (s, s):
            raise ValueError(f"stuck masks must have shape ({s}, {s})")
        if self.dead_rows.shape != (s,) or self.dead_cols.shape != (s,):
            raise ValueError(f"line masks must have shape ({s},)")
        if np.any(self.stuck_off & self.stuck_on):
            raise ValueError("a cell cannot be stuck-off and stuck-on at once")

    @classmethod
    def pristine(cls, size: int) -> "InstanceDefects":
        """A defect-free instance of the given size."""
        return cls(
            size=size,
            stuck_off=np.zeros((size, size), dtype=bool),
            stuck_on=np.zeros((size, size), dtype=bool),
            dead_rows=np.zeros(size, dtype=bool),
            dead_cols=np.zeros(size, dtype=bool),
        )

    def dead_mask(self) -> np.ndarray:
        """Boolean ``(s, s)`` mask of unusable cells (stuck or on a dead line)."""
        mask = self.stuck_off | self.stuck_on
        mask = mask | self.dead_rows[:, None] | self.dead_cols[None, :]
        return mask

    @property
    def num_dead_cells(self) -> int:
        """Count of unusable cells."""
        return int(self.dead_mask().sum())

    @property
    def dead_cell_fraction(self) -> float:
        """Unusable cells over ``s²``."""
        return self.num_dead_cells / float(self.size * self.size)

    @property
    def fully_defective(self) -> bool:
        """True when no cell of the instance is usable."""
        return bool(self.dead_mask().all())


@dataclass
class DefectMap:
    """Sampled defects for a pool of physical crossbar instances.

    The first ``len(mapping.instances)`` entries align positionally with the
    mapping's instances; any further entries are *spare* physical crossbars
    that the repair pass may re-bind clusters onto.
    """

    rates: DefectRates
    instances: List[InstanceDefects]
    metadata: dict = field(default_factory=dict)

    @property
    def num_instances(self) -> int:
        """Physical crossbars in the pool (mapped + spares)."""
        return len(self.instances)

    def dead_cell_fraction(self) -> float:
        """Unusable cells over all pool cells (0 for an empty pool)."""
        total = sum(d.size * d.size for d in self.instances)
        if total == 0:
            return 0.0
        return sum(d.num_dead_cells for d in self.instances) / float(total)

    def subset(self, indices: Sequence[int]) -> "DefectMap":
        """A defect map over ``instances[i] for i in indices`` (shared arrays)."""
        return DefectMap(
            rates=self.rates,
            instances=[self.instances[int(i)] for i in indices],
            metadata=dict(self.metadata),
        )

    def attach(self, mapping: MappingResult) -> MappingResult:
        """Store this defect map in ``mapping.metadata['defect_map']``."""
        mapping.metadata["defect_map"] = self
        return mapping


def local_cells(instance: CrossbarInstance) -> Tuple[np.ndarray, np.ndarray]:
    """Local ``(row, col)`` cell coordinates of each instance connection.

    Connection ``(i, j)`` sits at ``(rows.index(i), cols.index(j))`` — the
    same convention :class:`~repro.hardware.simulation.HybridNcsSimulator`
    uses when programming the crossbar.
    """
    row_index = {int(neuron): local for local, neuron in enumerate(instance.rows)}
    col_index = {int(neuron): local for local, neuron in enumerate(instance.cols)}
    rows_local = np.array([row_index[i] for i, _ in instance.connections], dtype=int)
    cols_local = np.array([col_index[j] for _, j in instance.connections], dtype=int)
    return rows_local, cols_local


def lost_connections(
    instance: CrossbarInstance, defects: InstanceDefects
) -> List[Tuple[int, int]]:
    """Connections of ``instance`` that land on dead cells of ``defects``."""
    if defects.size < max(len(instance.rows), len(instance.cols)):
        raise ValueError(
            f"physical crossbar of size {defects.size} cannot host an instance "
            f"with {len(instance.rows)} rows / {len(instance.cols)} cols"
        )
    if not instance.connections:
        return []
    rows_local, cols_local = local_cells(instance)
    dead = defects.dead_mask()
    hit = dead[rows_local, cols_local]
    return [pair for pair, lost in zip(instance.connections, hit) if lost]


def count_lost_connections(instance: CrossbarInstance, defects: InstanceDefects) -> int:
    """Number of instance connections landing on dead cells (fast path)."""
    if defects.size < max(len(instance.rows), len(instance.cols)):
        return len(instance.connections) + 1  # infeasible binding sentinel
    if not instance.connections:
        return 0
    rows_local, cols_local = local_cells(instance)
    return int(defects.dead_mask()[rows_local, cols_local].sum())


def sample_instance_defects(
    size: int, rates: DefectRates, rng: RngLike = None
) -> InstanceDefects:
    """Sample one physical crossbar's defects from the configured rates."""
    rng = ensure_rng(rng)
    if size < 1:
        raise ValueError(f"size must be >= 1, got {size}")
    # One uniform roll per cell splits into stuck-off / stuck-on / good,
    # mirroring the statistical injection in hardware.simulation.
    roll = rng.random((size, size))
    stuck_off = roll < rates.cell_stuck_off
    stuck_on = (roll >= rates.cell_stuck_off) & (
        roll < rates.cell_stuck_off + rates.cell_stuck_on
    )
    dead_rows = rng.random(size) < rates.row_line
    dead_cols = rng.random(size) < rates.col_line
    return InstanceDefects(
        size=size,
        stuck_off=stuck_off,
        stuck_on=stuck_on,
        dead_rows=dead_rows,
        dead_cols=dead_cols,
    )


def sample_defect_map(
    mapping: MappingResult,
    rates,
    rng: RngLike = None,
    spare_instances: int = 0,
    spare_size: Optional[int] = None,
) -> DefectMap:
    """Sample a defect map for ``mapping``'s crossbar pool.

    Parameters
    ----------
    mapping:
        The mapped design; one physical crossbar is sampled per instance.
    rates:
        A :class:`DefectRates` or a scalar stuck-off cell probability.
    spare_instances:
        Extra physical crossbars appended to the pool for the repair pass.
    spare_size:
        Dimension of the spares; defaults to the largest instance size in
        the mapping (or the library maximum when the mapping is empty) so
        any cluster can be re-bound onto a spare.
    """
    rates = DefectRates.coerce(rates)
    rng = ensure_rng(rng)
    if spare_instances < 0:
        raise ValueError(f"spare_instances must be >= 0, got {spare_instances}")
    sizes = [instance.size for instance in mapping.instances]
    if spare_instances:
        if spare_size is None:
            spare_size = max(sizes) if sizes else mapping.library.max_size
        if spare_size not in mapping.library:
            raise ValueError(
                f"spare_size {spare_size} is not in the library {mapping.library.sizes}"
            )
        sizes.extend([int(spare_size)] * spare_instances)
    instances = [sample_instance_defects(s, rates, rng=rng) for s in sizes]
    return DefectMap(
        rates=rates,
        instances=instances,
        metadata={
            "mapped_instances": mapping.num_crossbars,
            "spare_instances": spare_instances,
        },
    )
