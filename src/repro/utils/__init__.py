"""Shared utilities: argument validation, seeded RNG handling, timers."""

from repro.utils.rng import ensure_rng, spawn_rng
from repro.utils.timers import Timer
from repro.utils.validation import (
    check_binary_matrix,
    check_in_range,
    check_positive,
    check_probability,
    check_square,
)

__all__ = [
    "Timer",
    "check_binary_matrix",
    "check_in_range",
    "check_positive",
    "check_probability",
    "check_square",
    "ensure_rng",
    "spawn_rng",
]
