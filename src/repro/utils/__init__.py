"""Shared utilities: argument validation, seeded RNG handling, timers, hashing."""

from repro.utils.canonical import canonical, canonical_json, stable_hash
from repro.utils.rng import ensure_rng, spawn_rng, spawn_seeds
from repro.utils.timers import Timer, format_stage_seconds
from repro.utils.validation import (
    check_binary_matrix,
    check_in_range,
    check_positive,
    check_probability,
    check_square,
)

__all__ = [
    "Timer",
    "canonical",
    "canonical_json",
    "check_binary_matrix",
    "check_in_range",
    "check_positive",
    "check_probability",
    "check_square",
    "ensure_rng",
    "format_stage_seconds",
    "spawn_rng",
    "spawn_seeds",
    "stable_hash",
]
