"""A tiny wall-clock timer used by the GCP-vs-traversing runtime comparison."""

from __future__ import annotations

import time


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Example
    -------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float = 0.0
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._start

    @property
    def elapsed_ms(self) -> float:
        """Elapsed time in milliseconds."""
        return self.elapsed * 1e3
