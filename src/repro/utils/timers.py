"""Wall-clock timing utilities.

:class:`Timer` is the context manager used throughout the flow (stage
timing in :mod:`repro.core.autoncs`, the GCP-vs-traversing comparison,
the :mod:`repro.runtime` runner).  It is re-entrant: one instance may be
nested inside itself, and each exit reports the span that just closed
while the outer span keeps running undisturbed.

:func:`format_stage_seconds` renders a ``stage -> seconds`` mapping (the
``stage_seconds`` diagnostics collected by ``AutoNCS.run``) as an aligned
text block for reports and CLI output.
"""

from __future__ import annotations

import time
from typing import Mapping


class Timer:
    """Re-entrant context manager measuring elapsed wall-clock seconds.

    Each ``with`` entry pushes a start time; each exit pops it, setting
    :attr:`elapsed` to the span that just closed.  Outermost spans also
    accumulate into :attr:`total`, so one instance can time a whole loop
    of disjoint sections without double-counting nested use.

    Example
    -------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    >>> t.total >= t.elapsed
    True

    Nesting the same instance is safe — the outer span survives:

    >>> t = Timer()
    >>> with t:
    ...     with t:
    ...         _ = sum(range(10))
    ...     inner = t.elapsed
    >>> t.elapsed >= inner
    True
    """

    def __init__(self) -> None:
        self._starts: list = []
        self.elapsed: float = 0.0
        self.total: float = 0.0

    @property
    def depth(self) -> int:
        """How many nested spans are currently open."""
        return len(self._starts)

    @property
    def running(self) -> bool:
        """True while at least one span is open."""
        return bool(self._starts)

    def __enter__(self) -> "Timer":
        self._starts.append(time.perf_counter())
        return self

    def __exit__(self, *exc_info: object) -> None:
        if not self._starts:  # pragma: no cover - misuse guard
            raise RuntimeError("Timer.__exit__ without a matching __enter__")
        self.elapsed = time.perf_counter() - self._starts.pop()
        if not self._starts:
            self.total += self.elapsed

    @property
    def elapsed_ms(self) -> float:
        """Elapsed time of the last closed span in milliseconds."""
        return self.elapsed * 1e3


def format_stage_seconds(
    stage_seconds: Mapping[str, float], indent: str = "  "
) -> str:
    """Render per-stage wall times as an aligned block with percentages.

    ``stage_seconds`` maps stage names to seconds (e.g. the
    ``stage_seconds`` entry of ``AutoNcsResult.metadata``); insertion
    order is preserved, a total line is appended.
    """
    stages = [(str(name), float(seconds)) for name, seconds in stage_seconds.items()]
    if not stages:
        return f"{indent}(no stage timings recorded)"
    total = sum(seconds for _, seconds in stages)
    width = max(len("total"), max(len(name) for name, _ in stages))
    lines = []
    for name, seconds in stages:
        share = (seconds / total * 100.0) if total > 0 else 0.0
        lines.append(f"{indent}{name:<{width}}  {seconds:9.3f} s  ({share:5.1f} %)")
    lines.append(f"{indent}{'total':<{width}}  {total:9.3f} s")
    return "\n".join(lines)
