"""Seeded random-number-generator plumbing.

All stochastic code in the library takes an ``rng`` argument that may be a
``numpy.random.Generator``, an integer seed, or ``None``.  Converting through
:func:`ensure_rng` at the API boundary keeps every experiment reproducible
from a single seed.
"""

from __future__ import annotations

from typing import Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(rng: RngLike = None) -> np.random.Generator:
    """Coerce ``rng`` into a ``numpy.random.Generator``.

    ``None`` yields a fresh nondeterministic generator; an ``int`` seeds a new
    generator; an existing generator passes through untouched.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"rng must be None, an int seed, or a numpy Generator, got {type(rng).__name__}")


def spawn_seeds(rng: RngLike, count: int) -> list:
    """Draw ``count`` independent child *seeds* (ints) from ``rng``.

    The integer seeds are what :func:`spawn_rng` feeds to
    ``numpy.random.default_rng``; exposing them lets a driver ship a
    child's seed to another process (or into a cache key) and still
    reproduce exactly the generator a serial run would have used.
    """
    parent = ensure_rng(rng)
    return [int(seed) for seed in parent.integers(0, 2**63 - 1, size=count)]


def spawn_rng(rng: RngLike, count: int) -> list:
    """Derive ``count`` independent child generators from ``rng``.

    Used when a driver hands sub-tasks (e.g. per-testbench runs) their own
    stream so that re-ordering tasks does not perturb each other's draws.
    """
    return [np.random.default_rng(seed) for seed in spawn_seeds(rng, count)]
