"""The library's deprecation machinery.

Every deprecated surface funnels through :func:`warn_deprecated` so the
message format is uniform and tests can assert on it: the facade shims in
:mod:`repro.core`, the raw-``ndarray`` ``ConnectionMatrix(...)``
constructor (use :meth:`~repro.networks.connection_matrix.
ConnectionMatrix.from_dense` and friends), and the legacy per-call
keyword arguments of the public API (use
:class:`~repro.api.FlowOptions`).
"""

from __future__ import annotations

import warnings


def warn_deprecated(old: str, new: str, *, stacklevel: int = 3) -> None:
    """Emit the library's standard :class:`DeprecationWarning`.

    Parameters
    ----------
    old / new:
        Human-readable descriptions of the deprecated surface and its
        replacement, spliced into the uniform message
        ``"{old} is deprecated; use {new}"``.
    stacklevel:
        Passed to :func:`warnings.warn`; the default (3) points at the
        caller of the deprecated function rather than the shim itself.
    """
    warnings.warn(
        f"{old} is deprecated; use {new}",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
