"""Canonical serialization and stable content hashing.

The artifact cache of :mod:`repro.runtime` keys results on *content*:
the network topology, every configuration knob, the seed and the package
version.  For that to work across processes and sessions, equal inputs
must serialize to byte-identical strings.  :func:`canonical` normalizes
arbitrary configuration-like values (dataclasses, dicts, tuples, numpy
scalars and small arrays) into plain JSON-compatible structures with a
deterministic key order, and :func:`stable_hash` digests them with
SHA-256.

Python's builtin ``hash()`` is *not* suitable here: it is salted per
process for strings and unstable across versions.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import Any

import numpy as np


def canonical(value: Any) -> Any:
    """Reduce ``value`` to a deterministic JSON-compatible structure.

    Dataclasses are tagged with their class name so that two different
    config types with identical fields do not collide; mappings are
    key-sorted by :func:`json.dumps` at hash time; sequences become
    lists; numpy scalars and arrays become Python numbers and nested
    lists.  Objects with no canonical form fall back to ``repr``.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # repr round-trips doubles exactly; keep floats as floats so the
        # JSON encoder emits the shortest exact representation.
        return value
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return {"__ndarray__": value.tolist(), "dtype": str(value.dtype)}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return {"__dataclass__": type(value).__name__, **fields}
    if isinstance(value, dict):
        return {str(key): canonical(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = [canonical(item) for item in value]
        if isinstance(value, (set, frozenset)):
            items = sorted(items, key=repr)
        return items
    if isinstance(value, np.random.SeedSequence):
        return {
            "__seed_sequence__": canonical(value.entropy),
            "spawn_key": list(value.spawn_key),
        }
    return repr(value)


def canonical_json(value: Any) -> str:
    """The canonical JSON text of ``value`` (sorted keys, no whitespace)."""
    return json.dumps(canonical(value), sort_keys=True, separators=(",", ":"))


def stable_hash(value: Any) -> str:
    """A hex SHA-256 digest of ``value``'s canonical form.

    Stable across processes, sessions and platforms — unlike ``hash()``.
    """
    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()
