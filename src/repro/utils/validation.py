"""Argument validation helpers.

Every public entry point of the library validates its inputs through these
helpers so that user errors surface as clear ``ValueError``/``TypeError``
messages at the API boundary instead of as numpy shape errors deep inside an
algorithm.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


def check_positive(name: str, value: float, *, allow_zero: bool = False) -> None:
    """Raise ``ValueError`` unless ``value`` is a positive (or nonnegative) scalar."""
    if not np.isscalar(value) or isinstance(value, (bool, np.bool_)):
        raise TypeError(f"{name} must be a numeric scalar, got {value!r}")
    if not np.isfinite(value):
        raise ValueError(f"{name} must be finite, got {value!r}")
    if allow_zero:
        if value < 0:
            raise ValueError(f"{name} must be >= 0, got {value!r}")
    elif value <= 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def check_probability(name: str, value: float) -> None:
    """Raise ``ValueError`` unless ``value`` lies in the closed interval [0, 1]."""
    if not np.isscalar(value) or isinstance(value, (bool, np.bool_)):
        raise TypeError(f"{name} must be a numeric scalar, got {value!r}")
    if not (0.0 <= float(value) <= 1.0):
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")


def check_in_range(
    name: str,
    value: float,
    low: Optional[float] = None,
    high: Optional[float] = None,
    *,
    low_inclusive: bool = True,
    high_inclusive: bool = True,
) -> None:
    """Raise ``ValueError`` unless ``low <(=) value <(=) high``."""
    value = float(value)
    if low is not None:
        if low_inclusive and value < low:
            raise ValueError(f"{name} must be >= {low}, got {value}")
        if not low_inclusive and value <= low:
            raise ValueError(f"{name} must be > {low}, got {value}")
    if high is not None:
        if high_inclusive and value > high:
            raise ValueError(f"{name} must be <= {high}, got {value}")
        if not high_inclusive and value >= high:
            raise ValueError(f"{name} must be < {high}, got {value}")


def check_square(name: str, matrix: np.ndarray) -> None:
    """Raise ``ValueError`` unless ``matrix`` is a 2-D square array."""
    if not isinstance(matrix, np.ndarray):
        raise TypeError(f"{name} must be a numpy array, got {type(matrix).__name__}")
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError(f"{name} must be a square 2-D matrix, got shape {matrix.shape}")


def check_binary_matrix(name: str, matrix: np.ndarray) -> None:
    """Raise ``ValueError`` unless every entry of ``matrix`` is 0 or 1."""
    if not isinstance(matrix, np.ndarray):
        raise TypeError(f"{name} must be a numpy array, got {type(matrix).__name__}")
    values = np.unique(matrix)
    if not np.all(np.isin(values, (0, 1))):
        raise ValueError(f"{name} must contain only 0/1 entries, found values {values[:8]}")
