"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``compare``
    Run AutoNCS and FullCro on a network (generated or loaded) and print
    the Table-1-style comparison.
``testbench``
    Generate one of the paper testbenches, report its statistics and
    recognition rate, optionally save the network.
``cluster``
    Run ISC on a network and print the per-iteration statistics.
``reliability``
    Monte-Carlo functional yield vs defect rate on a (scaled) testbench,
    before and after fault-aware repair.
``render``
    Render a saved network (and optional clustering) to SVG.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.clustering import iterative_spectral_clustering
from repro.core import AutoNCS
from repro.core.config import AutoNcsConfig, fast_config
from repro.experiments.testbenches import build_testbench
from repro.mapping import fullcro_utilization
from repro.networks import random_sparse_network
from repro.networks.connection_matrix import ConnectionMatrix
from repro.networks.io import load_network_npz, save_network_npz
from repro.viz import matrix_to_svg, save_svg


def _load_or_generate(args: argparse.Namespace) -> ConnectionMatrix:
    if getattr(args, "load", None):
        return load_network_npz(args.load)
    return random_sparse_network(
        args.neurons, args.density, rng=args.seed, name="cli-network"
    )


def _add_network_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--load", help="load a network saved with 'testbench --save'")
    parser.add_argument("--neurons", type=int, default=160,
                        help="generated network size (default 160)")
    parser.add_argument("--density", type=float, default=0.05,
                        help="generated connection density (default 0.05)")
    parser.add_argument("--seed", type=int, default=42, help="RNG seed (default 42)")


def _cmd_compare(args: argparse.Namespace) -> int:
    network = _load_or_generate(args)
    config: AutoNcsConfig = fast_config() if args.fast else AutoNcsConfig()
    flow = AutoNCS(config)
    print(f"network: {network}")
    report = flow.compare(network, rng=args.seed)
    print(report.format_table())
    if args.verbose:
        from repro.core.summary import summarize_design

        for design in (report.autoncs, report.fullcro):
            print()
            print(summarize_design(design, technology=config.technology).format())
    return 0


def _cmd_testbench(args: argparse.Namespace) -> int:
    instance = build_testbench(args.index, rng=args.seed)
    network = instance.network
    print(f"testbench       : {instance.testbench.label}")
    print(f"network         : {network}")
    print(f"target sparsity : {instance.testbench.target_sparsity:.4f}")
    if not args.skip_recognition:
        rate = instance.recognition_rate(rng=args.seed, trials_per_pattern=2)
        print(f"recognition rate: {rate:.1%} (paper requires > 90 %)")
    if args.save:
        save_network_npz(network, args.save)
        print(f"saved network to {args.save}")
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    network = _load_or_generate(args)
    threshold = fullcro_utilization(network, 64)
    print(f"network: {network}")
    print(f"ISC stop threshold (FullCro utilization): {threshold:.4f}")
    isc = iterative_spectral_clustering(
        network, utilization_threshold=threshold, rng=args.seed
    )
    for record in isc.records:
        print(
            f"  iter {record.iteration:2d}: +{record.crossbars_placed:3d} crossbars, "
            f"avg u = {record.average_utilization:.3f}, "
            f"outliers left = {record.outlier_ratio_after:.1%}"
        )
    print(f"crossbars: {len(isc.crossbars)}  sizes: {isc.crossbar_size_histogram()}")
    print(f"discrete synapses: {len(isc.outliers)} ({isc.outlier_ratio:.1%})")
    return 0


def _cmd_reliability(args: argparse.Namespace) -> int:
    from repro.experiments.reliability import run_reliability_experiment

    result = run_reliability_experiment(
        testbench=args.testbench,
        dimension=args.dimension or None,
        defect_rates=tuple(args.rates),
        samples=args.samples,
        spare_instances=args.spares,
        rng=args.seed,
    )
    print(result.format())
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    network = load_network_npz(args.network)
    clusters = None
    if args.clustered:
        threshold = fullcro_utilization(network, 64)
        isc = iterative_spectral_clustering(
            network, utilization_threshold=threshold, rng=args.seed
        )
        clusters = [assignment.members for assignment in isc.crossbars]
    svg = matrix_to_svg(network, clusters=clusters, title=network.name)
    save_svg(svg, args.output)
    print(f"wrote {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AutoNCS: EDA flow for hybrid memristor neuromorphic systems",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compare = sub.add_parser("compare", help="AutoNCS vs FullCro comparison")
    _add_network_arguments(compare)
    compare.add_argument("--fast", action="store_true",
                         help="reduced-effort physical design (quick preview)")
    compare.add_argument("--verbose", action="store_true",
                         help="print the full per-design datasheets")
    compare.set_defaults(func=_cmd_compare)

    testbench = sub.add_parser("testbench", help="generate a paper testbench")
    testbench.add_argument("index", type=int, choices=(1, 2, 3),
                           help="paper testbench index")
    testbench.add_argument("--seed", type=int, default=42)
    testbench.add_argument("--save", help="save the network as .npz")
    testbench.add_argument("--skip-recognition", action="store_true")
    testbench.set_defaults(func=_cmd_testbench)

    cluster = sub.add_parser("cluster", help="run ISC and show the iterations")
    _add_network_arguments(cluster)
    cluster.set_defaults(func=_cmd_cluster)

    reliability = sub.add_parser(
        "reliability", help="Monte-Carlo yield vs defect rate, repair on/off"
    )
    reliability.add_argument("--testbench", type=int, default=1, choices=(1, 2, 3),
                             help="paper testbench index (default 1)")
    reliability.add_argument("--dimension", type=int, default=100,
                             help="scaled network size N (default 100; "
                                  "0 = full paper size)")
    reliability.add_argument("--rates", type=float, nargs="+",
                             default=[0.0, 0.2, 0.4],
                             help="stuck-off cell defect rates to sweep")
    reliability.add_argument("--samples", type=int, default=5,
                             help="sampled chips per defect rate (default 5)")
    reliability.add_argument("--spares", type=int, default=2,
                             help="spare crossbars for repair (default 2)")
    reliability.add_argument("--seed", type=int, default=42)
    reliability.set_defaults(func=_cmd_reliability)

    render = sub.add_parser("render", help="render a saved network to SVG")
    render.add_argument("network", help="a .npz network file")
    render.add_argument("--output", default="network.svg")
    render.add_argument("--clustered", action="store_true",
                        help="overlay the ISC crossbar clusters")
    render.add_argument("--seed", type=int, default=42)
    render.set_defaults(func=_cmd_render)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
