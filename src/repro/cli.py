"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``compare``
    Run AutoNCS and FullCro on a network (generated or loaded) and print
    the Table-1-style comparison.
``testbench``
    Generate one of the paper testbenches, report its statistics and
    recognition rate, optionally save the network.
``cluster``
    Run ISC on a network and print the per-iteration statistics.
``reliability``
    Monte-Carlo functional yield vs defect rate on a (scaled) testbench,
    before and after fault-aware repair.
``render``
    Render a saved network (and optional clustering) to SVG.
``sweep``
    Run a (size × density) grid of flow executions through the parallel,
    cache-aware :mod:`repro.runtime` engine.
``verify``
    Run the flow on a network (generated, loaded or a paper testbench)
    and independently verify the result: coverage, hardware legality,
    physical legality, functional equivalence.  Exit status 1 on any
    violation.
``bench``
    Run the perf harness (:mod:`repro.bench`): tagged routing/flow
    benchmarks emitting schema-versioned ``BENCH_*.json``, with
    ``--check`` regression gating against the committed baselines.
``serve``
    Run the mapping service (:mod:`repro.service`): an async HTTP/JSON
    job layer over the runtime engine — submit/status/result/cancel,
    dedup by content, bounded queue with backpressure, progress
    streaming and service metrics.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from typing import Iterator, List, Optional

from repro.api import FlowOptions
from repro.api import compare as api_compare
from repro.clustering import iterative_spectral_clustering
from repro.core.config import AutoNcsConfig, fast_config
from repro.experiments.testbenches import build_testbench
from repro.mapping import fullcro_utilization
from repro.networks import random_sparse_network
from repro.networks.connection_matrix import ConnectionMatrix
from repro.networks.io import load_network_npz, save_network_npz
from repro.viz import matrix_to_svg, save_svg

#: Headline metrics pre-registered on every ``--metrics`` run, so the
#: dump always reports them (zero-valued when the path never fired).
_HEADLINE_COUNTERS = (
    "cache.hits",
    "cache.misses",
    "routing.ripup_retries",
    "placement.wa_evals",
)


def _parse_testbench(value: str) -> int:
    """Accept a paper testbench as ``1``/``2``/``3`` or ``tb1``/``tb2``/``tb3``."""
    text = value.strip().lower()
    if text.startswith("tb"):
        text = text[2:]
    try:
        index = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"testbench must be 0-3 or tb1-tb3, got {value!r}"
        ) from None
    if index not in (0, 1, 2, 3):
        raise argparse.ArgumentTypeError(
            f"testbench must be 0-3 or tb1-tb3, got {value!r}"
        )
    return index


@contextmanager
def _observability(trace: Optional[str], metrics: Optional[str]) -> Iterator[None]:
    """Install a recorder when ``--trace``/``--metrics`` asked for one.

    Exports happen in ``finally``, so an interrupted run still leaves
    whatever spans and counters it collected on disk.
    """
    if not trace and not metrics:
        yield
        return
    from repro.observability import Recorder, recording, write_chrome_trace, write_metrics_text

    recorder = Recorder()
    for name in _HEADLINE_COUNTERS:
        recorder.metrics.counter(name)
    recorder.metrics.gauge("cache.hit_rate")
    try:
        with recording(recorder):
            yield
    finally:
        if trace:
            write_chrome_trace(recorder.tracer.spans, trace)
            print(f"trace written to {trace}")
        if metrics:
            write_metrics_text(
                recorder.snapshot(), metrics,
                header=f"repro metrics — {' '.join(sys.argv[1:]) or 'run'}",
            )
            print(f"metrics written to {metrics}")


def _add_observability_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", metavar="FILE",
                        help="write a Perfetto/chrome://tracing loadable "
                             "span trace (JSONL) to FILE")
    parser.add_argument("--metrics", metavar="FILE",
                        help="write the plain-text metrics dump to FILE")


def _add_resilience_arguments(parser: argparse.ArgumentParser,
                              retries_default: int = 1) -> None:
    parser.add_argument("--retries", type=int, default=retries_default,
                        metavar="N",
                        help="max attempts per job (retries with exponential "
                             f"backoff; default {retries_default})")
    parser.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                        help="per-job wall-clock budget; hung pool workers are "
                             "killed and the job retried (default: none)")


def _resilience_from_args(args: argparse.Namespace, fail_fast: bool = True):
    """A :class:`ResilienceConfig` when ``--retries``/``--timeout`` ask for
    one; ``None`` (the legacy fail-fast contract) otherwise."""
    retries = max(1, getattr(args, "retries", 1))
    timeout = getattr(args, "timeout", None)
    if retries <= 1 and timeout is None and fail_fast:
        return None
    from repro.runtime import ResilienceConfig, RetryPolicy

    return ResilienceConfig(
        retry=RetryPolicy(max_attempts=retries),
        timeout_seconds=timeout,
        fail_fast=fail_fast,
    )


def _apply_routing_overrides(
    config: AutoNcsConfig, router: Optional[str], kernel: Optional[str] = None
) -> AutoNcsConfig:
    """Apply ``--router`` / ``--kernel`` overrides to the routing config."""
    if not router and not kernel:
        return config
    import dataclasses

    from repro.physical.routing.router import RoutingConfig

    routing = config.routing if config.routing is not None else RoutingConfig()
    if router:
        routing = dataclasses.replace(routing, algorithm=router)
    if kernel:
        routing = dataclasses.replace(routing, kernel=kernel)
    return dataclasses.replace(config, routing=routing)


def _load_or_generate(args: argparse.Namespace) -> ConnectionMatrix:
    if getattr(args, "load", None):
        return load_network_npz(args.load)
    return random_sparse_network(
        args.neurons, args.density, rng=args.seed, name="cli-network"
    )


def _add_network_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--load", help="load a network saved with 'testbench --save'")
    parser.add_argument("--neurons", type=int, default=160,
                        help="generated network size (default 160)")
    parser.add_argument("--density", type=float, default=0.05,
                        help="generated connection density (default 0.05)")
    parser.add_argument("--seed", type=int, default=42, help="RNG seed (default 42)")


def _resolve_testbench_network(args: argparse.Namespace):
    """``(network, hopfield)`` of the scaled paper testbench in ``args``."""
    from repro.experiments.testbenches import scaled_testbench

    spec = scaled_testbench(args.testbench, args.dimension or None)
    instance = build_testbench(spec, rng=args.seed)
    print(f"testbench: {spec.label}")
    return instance.network, instance.hopfield


def _cmd_compare(args: argparse.Namespace) -> int:
    if args.testbench:
        network, _hopfield = _resolve_testbench_network(args)
    else:
        network = _load_or_generate(args)
    config = _apply_routing_overrides(
        fast_config() if args.fast else AutoNcsConfig(), args.router, args.kernel
    )
    print(f"network: {network}")
    with _observability(args.trace, args.metrics):
        report = api_compare(
            network,
            options=FlowOptions(
                config=config,
                seed=args.seed,
                n_jobs=args.jobs,
                resilience=_resilience_from_args(args),
            ),
        )
    print(report.format_table())
    if args.verbose:
        from repro.core.summary import summarize_design

        for design in (report.autoncs, report.fullcro):
            print()
            print(summarize_design(design, technology=config.technology).format())
    return 0


def _cmd_testbench(args: argparse.Namespace) -> int:
    instance = build_testbench(args.index, rng=args.seed)
    network = instance.network
    print(f"testbench       : {instance.testbench.label}")
    print(f"network         : {network}")
    print(f"target sparsity : {instance.testbench.target_sparsity:.4f}")
    if not args.skip_recognition:
        rate = instance.recognition_rate(rng=args.seed, trials_per_pattern=2)
        print(f"recognition rate: {rate:.1%} (paper requires > 90 %)")
    if args.save:
        save_network_npz(network, args.save)
        print(f"saved network to {args.save}")
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    network = _load_or_generate(args)
    threshold = fullcro_utilization(network, 64)
    print(f"network: {network}")
    print(f"ISC stop threshold (FullCro utilization): {threshold:.4f}")
    isc = iterative_spectral_clustering(
        network, utilization_threshold=threshold, rng=args.seed
    )
    for record in isc.records:
        print(
            f"  iter {record.iteration:2d}: +{record.crossbars_placed:3d} crossbars, "
            f"avg u = {record.average_utilization:.3f}, "
            f"outliers left = {record.outlier_ratio_after:.1%}"
        )
    print(f"crossbars: {len(isc.crossbars)}  sizes: {isc.crossbar_size_histogram()}")
    print(f"discrete synapses: {len(isc.outliers)} ({isc.outlier_ratio:.1%})")
    return 0


def _cmd_reliability(args: argparse.Namespace) -> int:
    from repro.experiments.reliability import run_reliability_experiment

    result = run_reliability_experiment(
        testbench=args.testbench,
        dimension=args.dimension or None,
        defect_rates=tuple(args.rates),
        samples=args.samples,
        spare_instances=args.spares,
        rng=args.seed,
        n_jobs=args.jobs,
        resilience=_resilience_from_args(args),
    )
    print(result.format())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.runtime import (
        ArtifactCache,
        EventLog,
        FaultPlan,
        ProgressPrinter,
        Runner,
        SweepJournal,
        SweepSpec,
    )

    config: AutoNcsConfig = fast_config() if args.fast else AutoNcsConfig()
    cache = None
    if not args.no_cache:
        cache = ArtifactCache(args.cache_dir)
        if args.clear_cache:
            removed = cache.clear()
            print(f"cleared {removed} cached artifact(s) from {cache.root}")
    if args.resume and cache is None:
        print("error: --resume needs the artifact cache to serve the cells "
              "already done (remove --no-cache)", file=sys.stderr)
        return 2
    spec = SweepSpec(
        sizes=tuple(args.sizes),
        densities=tuple(args.densities),
        seed=args.seed,
        kind=args.kind,
        config=config,
    )
    chaos = FaultPlan.parse(args.chaos, seed=args.seed) if args.chaos else None
    # Sweeps always run resilient: failed cells are collected as partial
    # results (exit status 1) instead of aborting the whole grid.
    resilience = _resilience_from_args(args, fail_fast=False)
    journal_path = (
        Path(args.journal) if args.journal
        else (cache.root / f"journal-{spec.sweep_key()[:12]}.jsonl")
        if cache is not None
        else None
    )
    if args.resume and journal_path is not None and not journal_path.exists():
        print(f"note: nothing to resume (no journal at {journal_path}); "
              "running the full grid")
    with _observability(None, args.metrics):
        with EventLog(trace_path=args.trace, printer=ProgressPrinter()) as events:
            journal = SweepJournal(journal_path) if journal_path else None
            try:
                runner = Runner(
                    n_jobs=args.jobs, cache=cache, events=events,
                    resilience=resilience, chaos=chaos, journal=journal,
                )
                result = runner.run_sweep(spec, resume=args.resume)
            finally:
                if journal is not None:
                    journal.close()
    print()
    print(result.format_table())
    if journal_path is not None:
        print(f"journal: {journal_path} (resume with --resume)")
    if args.trace:
        print(f"trace written to {args.trace}")
    if result.failures:
        for failure in result.failures:
            print(f"FAILED {failure.label}: {failure.failure} "
                  f"after {failure.attempts} attempt(s) — {failure.message}",
                  file=sys.stderr)
        return 1
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.api import verify as api_verify

    config = _apply_routing_overrides(
        fast_config() if args.fast else AutoNcsConfig(), args.router, args.kernel
    )
    hopfield = None
    if args.testbench:
        network, hopfield = _resolve_testbench_network(args)
    else:
        network = _load_or_generate(args)
    print(f"network: {network}")
    with _observability(args.trace, args.metrics):
        report = api_verify(
            network,
            options=FlowOptions(
                config=config,
                seed=args.seed,
                baseline=args.baseline,
                checks=args.checks or None,
                hopfield=hopfield,
            ),
        )
    print(report.format())
    return 0 if report.passed else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import run_bench_command

    return run_bench_command(args)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import ServiceConfig
    from repro.service.http import ServiceServer

    config = ServiceConfig(
        workers=args.workers,
        max_queue=args.max_queue,
        cache_dir=args.cache_dir,
        max_cache_bytes=args.max_cache_bytes,
        retries=args.retries,
        timeout_seconds=args.timeout,
    )
    server = ServiceServer(config, host=args.host, port=args.port,
                           verbose=args.verbose)
    print(f"mapping service listening on {server.url}")
    print(f"  workers={config.workers} max_queue={config.max_queue} "
          f"cache={config.cache_dir}")
    print("  POST /jobs  GET /jobs/<id>[/result|/events]  GET /stats  "
          "(ctrl-c to stop)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    network = load_network_npz(args.network)
    clusters = None
    if args.clustered:
        threshold = fullcro_utilization(network, 64)
        isc = iterative_spectral_clustering(
            network, utilization_threshold=threshold, rng=args.seed
        )
        clusters = [assignment.members for assignment in isc.crossbars]
    svg = matrix_to_svg(network, clusters=clusters, title=network.name)
    save_svg(svg, args.output)
    print(f"wrote {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="AutoNCS: EDA flow for hybrid memristor neuromorphic systems",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compare = sub.add_parser("compare", help="AutoNCS vs FullCro comparison")
    _add_network_arguments(compare)
    compare.add_argument("--testbench", type=_parse_testbench, default=0,
                         help="compare on a paper testbench (1-3 or tb1-tb3) "
                              "instead of a generated/loaded network "
                              "(default 0 = off)")
    compare.add_argument("--dimension", type=int, default=120,
                         help="scaled testbench size N (default 120; "
                              "0 = full paper size)")
    compare.add_argument("--fast", action="store_true",
                         help="reduced-effort physical design (quick preview)")
    compare.add_argument("--verbose", action="store_true",
                         help="print the full per-design datasheets")
    compare.add_argument("--jobs", type=int, default=1,
                         help="worker processes for the two flows (default 1; "
                              "results are identical for any value)")
    compare.add_argument("--router", choices=("ordered", "negotiated"), default=None,
                         help="routing algorithm override (default: config's, "
                              "i.e. ordered)")
    compare.add_argument("--kernel", choices=("auto", "numba", "python"),
                         default=None,
                         help="maze-search implementation: compiled numba "
                              "kernel or the python reference (default: "
                              "config's, i.e. auto)")
    _add_resilience_arguments(compare)
    _add_observability_arguments(compare)
    compare.set_defaults(func=_cmd_compare)

    testbench = sub.add_parser("testbench", help="generate a paper testbench")
    testbench.add_argument("index", type=int, choices=(1, 2, 3),
                           help="paper testbench index")
    testbench.add_argument("--seed", type=int, default=42)
    testbench.add_argument("--save", help="save the network as .npz")
    testbench.add_argument("--skip-recognition", action="store_true")
    testbench.set_defaults(func=_cmd_testbench)

    cluster = sub.add_parser("cluster", help="run ISC and show the iterations")
    _add_network_arguments(cluster)
    cluster.set_defaults(func=_cmd_cluster)

    reliability = sub.add_parser(
        "reliability", help="Monte-Carlo yield vs defect rate, repair on/off"
    )
    reliability.add_argument("--testbench", type=int, default=1, choices=(1, 2, 3),
                             help="paper testbench index (default 1)")
    reliability.add_argument("--dimension", type=int, default=100,
                             help="scaled network size N (default 100; "
                                  "0 = full paper size)")
    reliability.add_argument("--rates", type=float, nargs="+",
                             default=[0.0, 0.2, 0.4],
                             help="stuck-off cell defect rates to sweep")
    reliability.add_argument("--samples", type=int, default=5,
                             help="sampled chips per defect rate (default 5)")
    reliability.add_argument("--spares", type=int, default=2,
                             help="spare crossbars for repair (default 2)")
    reliability.add_argument("--seed", type=int, default=42)
    reliability.add_argument("--jobs", type=int, default=1,
                             help="worker processes for the Monte-Carlo trials "
                                  "(default 1; results are identical for any value)")
    _add_resilience_arguments(reliability)
    reliability.set_defaults(func=_cmd_reliability)

    sweep = sub.add_parser(
        "sweep", help="run a (size x density) grid through the runtime engine"
    )
    sweep.add_argument("--sizes", type=int, nargs="+", default=[80, 120, 160],
                       help="network sizes to sweep (default 80 120 160)")
    sweep.add_argument("--densities", type=float, nargs="+",
                       default=[0.04, 0.06, 0.08],
                       help="connection densities to sweep "
                            "(default 0.04 0.06 0.08)")
    sweep.add_argument("--seed", type=int, default=42,
                       help="sweep master seed (default 42)")
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes (default 1; results are "
                            "identical for any value)")
    sweep.add_argument("--kind", choices=("compare", "autoncs", "fullcro"),
                       default="compare",
                       help="flow to run per cell (default compare)")
    sweep.add_argument("--fast", action="store_true",
                       help="reduced-effort physical design (quick preview)")
    sweep.add_argument("--cache-dir", default=".repro-cache",
                       help="artifact cache directory (default .repro-cache)")
    sweep.add_argument("--no-cache", action="store_true",
                       help="disable the artifact cache entirely")
    sweep.add_argument("--clear-cache", action="store_true",
                       help="empty the cache before running")
    sweep.add_argument("--trace",
                       help="write a JSONL event trace to this file")
    sweep.add_argument("--metrics", metavar="FILE",
                       help="write the plain-text metrics dump to FILE")
    _add_resilience_arguments(sweep, retries_default=2)
    sweep.add_argument("--chaos", metavar="SPEC", default=None,
                       help="inject deterministic faults: a preset (transient, "
                            "crash, hang, error, corrupt, mixed) or "
                            "'kind@site:p=0.5;...' rules — see "
                            "repro.runtime.chaos")
    sweep.add_argument("--journal", metavar="FILE", default=None,
                       help="crash-safe sweep journal path (default: "
                            "<cache-dir>/journal-<sweep-key>.jsonl)")
    sweep.add_argument("--resume", action="store_true",
                       help="resume a killed sweep: replay the journal, skip "
                            "quarantined cells, serve finished cells from the "
                            "cache (bitwise-identical results)")
    sweep.set_defaults(func=_cmd_sweep)

    verify = sub.add_parser(
        "verify", help="run the flow and independently verify the result"
    )
    _add_network_arguments(verify)
    verify.add_argument("--testbench", type=_parse_testbench, default=0,
                        help="verify a paper testbench (1-3 or tb1-tb3) instead "
                             "of a generated/loaded network (default 0 = off)")
    verify.add_argument("--dimension", type=int, default=120,
                        help="scaled testbench size N (default 120; "
                             "0 = full paper size)")
    verify.add_argument("--baseline", action="store_true",
                        help="verify the FullCro baseline flow instead of AutoNCS")
    verify.add_argument("--fast", action="store_true",
                        help="reduced-effort physical design (quick preview)")
    verify.add_argument("--checks", nargs="+",
                        choices=("coverage", "hardware", "physical", "functional"),
                        help="run only these checks (default: all)")
    verify.add_argument("--router", choices=("ordered", "negotiated"), default=None,
                        help="routing algorithm override (default: config's, "
                             "i.e. ordered)")
    verify.add_argument("--kernel", choices=("auto", "numba", "python"),
                        default=None,
                        help="maze-search implementation: compiled numba "
                             "kernel or the python reference (default: "
                             "config's, i.e. auto)")
    _add_observability_arguments(verify)
    verify.set_defaults(func=_cmd_verify)

    bench = sub.add_parser(
        "bench", help="perf harness: run benchmarks, emit/check BENCH_*.json"
    )
    from repro.bench import add_bench_arguments

    add_bench_arguments(bench)
    bench.set_defaults(func=_cmd_bench)

    serve = sub.add_parser(
        "serve", help="run the mapping service (async HTTP job layer)"
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8787,
                       help="bind port (default 8787; 0 = ephemeral)")
    serve.add_argument("--workers", type=int, default=2,
                       help="service worker threads (default 2)")
    serve.add_argument("--max-queue", type=int, default=64,
                       help="queued-job bound; beyond it submissions get "
                            "429 + Retry-After (default 64)")
    serve.add_argument("--cache-dir", default=".repro-cache",
                       help="artifact cache directory (default .repro-cache)")
    serve.add_argument("--max-cache-bytes", type=int, default=None,
                       metavar="BYTES",
                       help="LRU-evict cached artifacts beyond this size "
                            "(default: unbounded)")
    serve.add_argument("--verbose", action="store_true",
                       help="log every HTTP request")
    _add_resilience_arguments(serve, retries_default=2)
    serve.set_defaults(func=_cmd_serve)

    render = sub.add_parser("render", help="render a saved network to SVG")
    render.add_argument("network", help="a .npz network file")
    render.add_argument("--output", default="network.svg")
    render.add_argument("--clustered", action="store_true",
                        help="overlay the ISC crossbar clusters")
    render.add_argument("--seed", type=int, default=42)
    render.set_defaults(func=_cmd_render)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
