"""Service-level metrics: counters, gauges and a latency reservoir.

Everything the load-balancer dashboard would want from a serving stack
in one thread-safe object: request/outcome counters, queue depth and
in-flight gauges, the cache-hit ratio, and p50/p99 latency over a
bounded reservoir of recent completions.  Every update is mirrored into
the current observability recorder (``service.*`` counters/gauges and a
``service.latency_seconds`` histogram), so ``--metrics`` dumps and
worker-absorbed snapshots see the service the same way they see the
flow — and cost nothing when the null recorder is installed.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Dict, Optional

from repro.observability import get_recorder

#: Completions kept for the latency percentiles (enough for stable
#: p99 at bench scale without unbounded growth).
RESERVOIR_SIZE = 8192


def percentile(values, q: float) -> float:
    """The ``q``-th percentile (0..100) by linear interpolation."""
    data = sorted(values)
    if not data:
        return 0.0
    if len(data) == 1:
        return float(data[0])
    rank = (q / 100.0) * (len(data) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(data) - 1)
    frac = rank - lo
    return float(data[lo] * (1.0 - frac) + data[hi] * frac)


class ServiceMetrics:
    """Thread-safe service counters + latency percentiles."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._latencies: deque = deque(maxlen=RESERVOIR_SIZE)
        self.started = time.time()

    # ------------------------------------------------------------------
    def count(self, name: str, n: int = 1) -> None:
        """Increment the service counter ``name`` (mirrored to the recorder)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n
        get_recorder().count(f"service.{name}", n)

    def gauge(self, name: str, value: float) -> None:
        """Publish a point-in-time service gauge."""
        get_recorder().gauge(f"service.{name}", value)

    def observe_latency(self, seconds: float) -> None:
        """Record one request's submission-to-completion latency."""
        with self._lock:
            self._latencies.append(float(seconds))
        get_recorder().observe("service.latency_seconds", seconds)

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    # ------------------------------------------------------------------
    def snapshot(self, queue_depth: int = 0, in_flight: int = 0,
                 cache: Optional[Any] = None) -> Dict[str, Any]:
        """One JSON-compatible stats view (the ``GET /stats`` body)."""
        with self._lock:
            counters = dict(self._counters)
            latencies = list(self._latencies)
        requests = counters.get("requests", 0)
        hits = counters.get("cache_hits", 0) + counters.get("dedup_coalesced", 0)
        stats: Dict[str, Any] = {
            "uptime_seconds": time.time() - self.started,
            "queue_depth": queue_depth,
            "in_flight": in_flight,
            "counters": counters,
            "cache_hit_ratio": (hits / requests) if requests else 0.0,
            "latency": {
                "count": len(latencies),
                "p50_seconds": percentile(latencies, 50.0),
                "p99_seconds": percentile(latencies, 99.0),
                "max_seconds": max(latencies) if latencies else 0.0,
            },
        }
        if cache is not None:
            stats["cache"] = {
                "entries": len(cache),
                "hits": cache.hits,
                "misses": cache.misses,
                "evictions": getattr(cache, "evictions", 0),
                "max_bytes": getattr(cache, "max_bytes", None),
            }
        return stats
