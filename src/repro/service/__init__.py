"""repro.service — mapping-as-a-service over the runtime engine.

An async job layer that serves the AutoNCS flows over HTTP/JSON,
entirely from the standard library:

* :class:`JobRequest` / :class:`JobRecord` — content-described jobs
  (``map`` / ``compare`` / ``verify`` / ``sweep``) keyed by network
  digest + config hash + seed, so identical submissions deduplicate;
* :class:`MappingService` — the transport-independent core: dedup,
  a bounded priority queue with backpressure, worker threads running
  jobs through the resilient cache-aware
  :class:`~repro.runtime.runner.Runner`, per-job progress traces and
  service metrics (queue depth, in-flight, hit ratio, p50/p99 latency);
* :class:`ServiceServer` (:mod:`repro.service.http`) — the stdlib
  ``ThreadingHTTPServer`` transport (``python -m repro serve``);
* :class:`ServiceClient` (:mod:`repro.service.client`) — the matching
  ``urllib`` client.

Quickstart
----------
>>> from repro.service import ServiceConfig, ServiceServer
>>> from repro.service.client import ServiceClient
>>> with ServiceServer(ServiceConfig(workers=2)) as server:  # doctest: +SKIP
...     client = ServiceClient(server.url)
...     done = client.submit({"kind": "map", "neurons": 48}, wait=True)
"""

from repro.service.engine import (
    MappingService,
    ServiceConfig,
    summarize_result,
)
from repro.service.http import ServiceServer
from repro.service.jobs import (
    BadRequestError,
    JOB_KINDS,
    JobRecord,
    JobRequest,
    TERMINAL_STATES,
)
from repro.service.metrics import ServiceMetrics, percentile
from repro.service.queue import JobQueue, QueueFullError

__all__ = [
    "BadRequestError",
    "JOB_KINDS",
    "JobQueue",
    "JobRecord",
    "JobRequest",
    "MappingService",
    "QueueFullError",
    "ServiceConfig",
    "ServiceMetrics",
    "ServiceServer",
    "TERMINAL_STATES",
    "percentile",
    "summarize_result",
]
