"""Load generation against a running mapping service.

The measurement core shared by the ``service`` bench suite
(:mod:`repro.bench`) and the standalone harness
(``benchmarks/bench_service.py``): a pool of client threads submits a
fixed, seeded request mix over HTTP (``?wait=1``, so each request's
wall time *is* its submission-to-result latency), and a
:class:`LoadReport` aggregates latencies, errors and throughput.

The default mix cycles a small set of unique jobs across many requests
— the serving sweet spot the dedup layer exists for — so a healthy run
executes each unique flow exactly once and serves everything else from
the in-flight coalescer or the artifact cache (a ≥90 % hit mix at the
default 8 uniques / 1200 requests).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.service.client import ServiceClient, ServiceError
from repro.service.metrics import percentile


def default_payloads(unique: int = 8, seed: int = 42) -> List[Dict[str, Any]]:
    """The seeded request mix: ``unique`` distinct tiny ``map`` jobs."""
    return [
        {
            "kind": "map",
            "neurons": 16 + 2 * index,
            "density": 0.2,
            "network_seed": index + 1,
            "seed": seed,
            "fast": True,
        }
        for index in range(unique)
    ]


@dataclass
class LoadReport:
    """Aggregated outcome of one load run."""

    requests: int = 0
    errors: int = 0
    rejected: int = 0  # 429 backpressure responses (retried, then counted here)
    wall_seconds: float = 0.0
    latencies_seconds: List[float] = field(default_factory=list)
    server_stats: Optional[Dict[str, Any]] = None

    @property
    def p50_seconds(self) -> float:
        return percentile(self.latencies_seconds, 50.0)

    @property
    def p99_seconds(self) -> float:
        return percentile(self.latencies_seconds, 99.0)

    @property
    def throughput_rps(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.requests / self.wall_seconds

    @property
    def hit_ratio(self) -> float:
        """Server-side (cache + coalesced) hits over requests, when known."""
        if not self.server_stats:
            return 0.0
        return float(self.server_stats.get("cache_hit_ratio", 0.0))

    def format(self) -> str:
        lines = [
            f"requests    : {self.requests} "
            f"({self.errors} error(s), {self.rejected} shed by backpressure)",
            f"wall        : {self.wall_seconds:.2f}s "
            f"({self.throughput_rps:,.0f} req/s)",
            f"latency     : p50 {self.p50_seconds * 1e3:.1f}ms  "
            f"p99 {self.p99_seconds * 1e3:.1f}ms",
        ]
        if self.server_stats:
            counters = self.server_stats.get("counters", {})
            lines.append(
                f"server      : hit ratio {self.hit_ratio:.1%}, "
                f"{counters.get('jobs_executed', 0)} flow(s) executed, "
                f"{counters.get('failed', 0)} failed"
            )
        return "\n".join(lines)


def run_load(
    base_url: str,
    requests: int = 1200,
    clients: int = 16,
    payloads: Optional[List[Dict[str, Any]]] = None,
    timeout: float = 120.0,
    max_backoffs: int = 50,
) -> LoadReport:
    """Drive ``requests`` submissions at ``base_url`` from ``clients`` threads.

    Requests round-robin over ``payloads`` (default mix above) with
    ``wait=1``, so every latency sample covers queueing + dedup +
    execution (or cache service).  A 429 sleeps out the server's
    ``Retry-After`` hint and retries (counted in ``rejected``); any
    other failure counts as an error and moves on.
    """
    mix = payloads if payloads is not None else default_payloads()
    report = LoadReport(requests=requests)
    lock = threading.Lock()

    def worker(indices: range) -> None:
        client = ServiceClient(base_url, timeout=timeout)
        for index in indices:
            payload = mix[index % len(mix)]
            backoffs = 0
            started = time.perf_counter()
            while True:
                try:
                    client.submit(payload, wait=True)
                except ServiceError as exc:
                    if exc.queue_full and backoffs < max_backoffs:
                        backoffs += 1
                        time.sleep(exc.retry_after_seconds or 0.05)
                        continue
                    with lock:
                        report.errors += 1
                except OSError:
                    with lock:
                        report.errors += 1
                break
            elapsed = time.perf_counter() - started
            with lock:
                report.rejected += backoffs
                report.latencies_seconds.append(elapsed)

    per_client = [range(start, requests, clients) for start in range(clients)]
    threads = [
        threading.Thread(target=worker, args=(indices,), name=f"load-{i}")
        for i, indices in enumerate(per_client)
    ]
    wall_started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.wall_seconds = time.perf_counter() - wall_started
    try:
        report.server_stats = ServiceClient(base_url, timeout=timeout).stats()
    except (ServiceError, OSError):
        report.server_stats = None
    return report
