"""A minimal stdlib client for the mapping service.

Wraps :mod:`urllib.request` so scripts, tests and the load harness can
talk to a running server without any HTTP boilerplate::

    from repro.service.client import ServiceClient

    client = ServiceClient("http://127.0.0.1:8787")
    done = client.submit({"kind": "map", "neurons": 48}, wait=True)
    print(done["result"]["cost"])

Server-side errors surface as :class:`ServiceError` carrying the HTTP
status and the decoded ``{"error": ...}`` body — in particular a 429
(queue full) exposes ``retry_after_seconds`` so callers can back off.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Dict, Iterator, List, Optional


class ServiceError(Exception):
    """A non-2xx response from the service."""

    def __init__(self, status: int, message: str,
                 retry_after_seconds: Optional[float] = None) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message
        self.retry_after_seconds = retry_after_seconds

    @property
    def queue_full(self) -> bool:
        return self.status == 429


class ServiceClient:
    """Talks JSON to one service base URL."""

    def __init__(self, base_url: str, timeout: float = 120.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None) -> Any:
        data = None if body is None else json.dumps(body).encode("utf-8")
        request = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raw = exc.read()
            try:
                message = json.loads(raw.decode("utf-8")).get("error", str(exc))
            except (json.JSONDecodeError, UnicodeDecodeError):
                message = raw.decode("utf-8", "replace") or str(exc)
            retry_after = exc.headers.get("Retry-After")
            raise ServiceError(
                exc.code,
                message,
                retry_after_seconds=float(retry_after) if retry_after else None,
            ) from None

    # ------------------------------------------------------------------
    def healthy(self) -> bool:
        try:
            return bool(self._request("GET", "/healthz").get("ok"))
        except (ServiceError, OSError):
            return False

    def stats(self) -> Dict[str, Any]:
        return self._request("GET", "/stats")

    def submit(self, request: Dict[str, Any], wait: bool = False,
               timeout: Optional[float] = None) -> Dict[str, Any]:
        """Submit a job payload; with ``wait=True`` returns the result body."""
        path = "/jobs"
        if wait:
            path += f"?wait=1&timeout={timeout if timeout is not None else self.timeout:g}"
        return self._request("POST", path, body=request)

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/jobs")["jobs"]

    def events(self, job_id: str, follow: bool = True) -> Iterator[Dict[str, Any]]:
        """Yield the job's progress events (JSON lines; streams while live)."""
        suffix = "" if follow else "?follow=0"
        request = urllib.request.Request(
            f"{self.base_url}/jobs/{job_id}/events{suffix}"
        )
        with urllib.request.urlopen(request, timeout=self.timeout) as response:
            for line in response:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line.decode("utf-8"))
                except (json.JSONDecodeError, UnicodeDecodeError):
                    continue
                if isinstance(record, dict):
                    yield record
