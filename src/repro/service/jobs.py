"""Service job model: requests, dedup keys, and job records.

A :class:`JobRequest` is the wire form of one unit of service work —
``map``, ``compare``, ``verify`` or ``sweep`` — described entirely by
content (network spec, config knobs, seed), never by references to
driver-process objects, so identical requests from different clients
are *identical* in the only sense that matters for deduplication.

The dedup key of a request is a stable hash over the same material the
runtime :mod:`~repro.runtime.cache` keys artifacts on — the generated
network's :meth:`~repro.networks.connection_matrix.ConnectionMatrix.
digest`, the :meth:`~repro.core.config.AutoNcsConfig.cache_key`, the
seed and the job kind — so two in-flight submissions of the same work
coalesce onto one :class:`JobRecord`, and a completed one is served
straight from the :class:`~repro.runtime.cache.ArtifactCache`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from threading import Lock
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.core.config import AutoNcsConfig, fast_config
from repro.networks.generators import random_sparse_network
from repro.runtime.jobs import Job, SweepSpec
from repro.utils.canonical import stable_hash

#: Request kinds the service accepts.
JOB_KINDS = ("map", "compare", "verify", "sweep")

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: States a job can no longer leave.
TERMINAL_STATES = (DONE, FAILED, CANCELLED)


class BadRequestError(ValueError):
    """A submission payload the service cannot interpret (HTTP 400)."""


def _require_number(payload: Dict[str, Any], key: str, default, lo, hi):
    value = payload.get(key, default)
    try:
        value = type(default)(value)
    except (TypeError, ValueError):
        raise BadRequestError(f"{key!r} must be a number, got {value!r}") from None
    if not lo <= value <= hi:
        raise BadRequestError(f"{key!r} must lie in [{lo}, {hi}], got {value}")
    return value


@dataclass(frozen=True)
class JobRequest:
    """One content-described service job.

    ``map``/``compare``/``verify`` jobs generate a random sparse network
    from ``(neurons, density, network_seed)`` and run the corresponding
    flow on it with ``seed``; ``sweep`` jobs run a
    :class:`~repro.runtime.jobs.SweepSpec` grid of ``sweep_kind`` flows.
    ``fast`` selects the reduced-effort config; ``router`` overrides the
    routing algorithm.  ``priority`` orders the queue (higher first).
    """

    kind: str
    neurons: int = 64
    density: float = 0.08
    network_seed: int = 1
    seed: int = 42
    fast: bool = True
    router: Optional[str] = None
    priority: int = 0
    sizes: Tuple[int, ...] = ()
    densities: Tuple[float, ...] = ()
    sweep_kind: str = "compare"

    @classmethod
    def from_dict(cls, payload: Any) -> "JobRequest":
        """Validate and build a request from a decoded JSON payload."""
        if not isinstance(payload, dict):
            raise BadRequestError(f"request body must be an object, got {type(payload).__name__}")
        kind = payload.get("kind")
        if kind not in JOB_KINDS:
            raise BadRequestError(f"'kind' must be one of {list(JOB_KINDS)}, got {kind!r}")
        router = payload.get("router")
        if router not in (None, "ordered", "negotiated"):
            raise BadRequestError(f"'router' must be 'ordered' or 'negotiated', got {router!r}")
        common = dict(
            kind=kind,
            seed=_require_number(payload, "seed", 42, 0, 2**31 - 1),
            fast=bool(payload.get("fast", True)),
            router=router,
            priority=_require_number(payload, "priority", 0, -100, 100),
        )
        if kind == "sweep":
            sizes = payload.get("sizes", [40, 56])
            densities = payload.get("densities", [0.08])
            sweep_kind = payload.get("sweep_kind", "compare")
            if sweep_kind not in ("compare", "autoncs", "fullcro"):
                raise BadRequestError(
                    f"'sweep_kind' must be compare/autoncs/fullcro, got {sweep_kind!r}"
                )
            try:
                sizes = tuple(int(s) for s in sizes)
                densities = tuple(float(d) for d in densities)
            except (TypeError, ValueError):
                raise BadRequestError("'sizes'/'densities' must be numeric lists") from None
            if not sizes or not densities:
                raise BadRequestError("'sizes' and 'densities' must be non-empty")
            if min(sizes) < 2:
                raise BadRequestError(f"'sizes' must be >= 2, got {list(sizes)}")
            if not all(0.0 < d <= 1.0 for d in densities):
                raise BadRequestError(
                    f"'densities' must lie in (0, 1], got {list(densities)}"
                )
            if len(sizes) * len(densities) > 256:
                raise BadRequestError("sweep grid too large (max 256 cells)")
            return cls(sizes=sizes, densities=densities, sweep_kind=sweep_kind, **common)
        return cls(
            neurons=_require_number(payload, "neurons", 64, 2, 100_000),
            density=_require_number(payload, "density", 0.08, 1e-6, 1.0),
            network_seed=_require_number(payload, "network_seed", 1, 0, 2**31 - 1),
            **common,
        )

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "kind": self.kind,
            "seed": self.seed,
            "fast": self.fast,
            "router": self.router,
            "priority": self.priority,
        }
        if self.kind == "sweep":
            data.update(
                sizes=list(self.sizes),
                densities=list(self.densities),
                sweep_kind=self.sweep_kind,
            )
        else:
            data.update(
                neurons=self.neurons,
                density=self.density,
                network_seed=self.network_seed,
            )
        return data

    # ------------------------------------------------------------------
    def config(self) -> AutoNcsConfig:
        """The flow configuration this request asks for."""
        config = fast_config() if self.fast else AutoNcsConfig()
        if self.router:
            import dataclasses

            from repro.physical.routing.router import RoutingConfig

            routing = config.routing if config.routing is not None else RoutingConfig()
            config = dataclasses.replace(
                config, routing=dataclasses.replace(routing, algorithm=self.router)
            )
        return config

    def materialize(self):
        """``(work, dedup_key)`` — the runnable unit plus its identity.

        ``work`` is a runtime :class:`~repro.runtime.jobs.Job` for the
        single-flow kinds and a :class:`~repro.runtime.jobs.SweepSpec`
        for sweeps.  The dedup key hashes exactly the content the
        artifact cache would key the result on.
        """
        config = self.config()
        if self.kind == "sweep":
            spec = SweepSpec(
                sizes=self.sizes,
                densities=self.densities,
                seed=self.seed,
                kind=self.sweep_kind,
                config=config,
                name="service-sweep",
            )
            return spec, stable_hash({"kind": "sweep", "sweep": spec.sweep_key()})
        network = random_sparse_network(
            self.neurons,
            self.density,
            rng=np.random.default_rng(self.network_seed),
            name=f"svc-n{self.neurons}-d{self.density:g}-s{self.network_seed}",
        )
        runtime_kind = {"map": "autoncs", "compare": "compare", "verify": "verify_flow"}[
            self.kind
        ]
        key = {
            "network": network.digest(),
            "config": config.cache_key(),
            "seed": self.seed,
            "service_kind": self.kind,
        }
        job = Job(
            kind=runtime_kind,
            label=f"{self.kind} {network.name}",
            payload={"network": network, "config": config},
            seed=self.seed,
            key=key,
        )
        return job, stable_hash(key)


@dataclass
class JobRecord:
    """The service-side lifecycle record of one deduplicated job.

    One record may serve many submissions (``submissions`` counts the
    coalesced ones).  ``result`` holds the in-memory flow result while
    the record is retained; the artifact cache holds it durably.
    """

    job_id: str
    key: str
    request: JobRequest
    state: str = QUEUED
    created: float = field(default_factory=time.time)
    started: Optional[float] = None
    finished: Optional[float] = None
    submissions: int = 1
    cache_hit: bool = False
    attempts: int = 0
    error: Optional[str] = None
    result: Any = None
    events_path: Optional[str] = None
    #: Guards state transitions on this record (workers + HTTP threads).
    _lock: Lock = field(default_factory=Lock, repr=False)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def latency_seconds(self) -> Optional[float]:
        """Submission-to-completion wall time (``None`` until terminal)."""
        if self.finished is None:
            return None
        return self.finished - self.created

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible status view (the ``GET /jobs/<id>`` body)."""
        return {
            "job_id": self.job_id,
            "key": self.key,
            "kind": self.request.kind,
            "state": self.state,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "latency_seconds": self.latency_seconds,
            "submissions": self.submissions,
            "cache_hit": self.cache_hit,
            "attempts": self.attempts,
            "error": self.error,
            "request": self.request.to_dict(),
        }
