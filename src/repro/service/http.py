"""The HTTP/JSON transport over :class:`~repro.service.engine.MappingService`.

A deliberately small, stdlib-only adapter (``http.server.
ThreadingHTTPServer`` — one thread per connection, no new deps):

========================== =========================================
``GET  /healthz``           liveness (``{"ok": true}``)
``GET  /stats``             service metrics snapshot
``POST /jobs``              submit a job (``?wait=1`` blocks until
                            terminal); ``202`` queued / ``200``
                            coalesced or waited / ``400`` bad request
                            / ``429`` + ``Retry-After`` queue full
``GET  /jobs``              list retained job records
``GET  /jobs/<id>``         job status
``GET  /jobs/<id>/result``  result payload (``409`` until terminal)
``GET  /jobs/<id>/events``  progress stream — chunked JSON lines,
                            live-follows a running job
``POST /jobs/<id>/cancel``  cancel a queued job
========================== =========================================

All request/response bodies are JSON; errors are ``{"error": ...}``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.service.engine import MappingService, ServiceConfig
from repro.service.jobs import BadRequestError, JobRequest
from repro.service.queue import QueueFullError
from repro.utils.canonical import canonical_json

#: Cap on accepted request bodies (a submission is a small JSON object).
MAX_BODY_BYTES = 1 << 20

#: Cap on ``?wait=1`` blocking, so a stuck job cannot pin an HTTP
#: thread forever (clients poll ``/jobs/<id>`` past this point).
MAX_WAIT_SECONDS = 300.0


class _Handler(BaseHTTPRequestHandler):
    """One request against the shared :class:`MappingService`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-service"

    # The service is attached to the server object by ``serve``.
    @property
    def service(self) -> MappingService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _send_json(self, status: int, payload: Any,
                   extra_headers: Optional[dict] = None) -> None:
        body = (canonical_json(payload) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise BadRequestError(f"request body too large ({length} bytes)")
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise BadRequestError("request body must be a JSON object")
        try:
            return json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise BadRequestError(f"request body is not valid JSON: {exc}") from None

    def _route(self) -> Tuple[str, dict]:
        parsed = urlparse(self.path)
        query = {key: values[-1] for key, values in parse_qs(parsed.query).items()}
        return parsed.path.rstrip("/") or "/", query

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path, query = self._route()
        try:
            if path == "/healthz":
                self._send_json(200, {"ok": True})
            elif path == "/stats":
                self._send_json(200, self.service.stats())
            elif path == "/jobs":
                self._send_json(
                    200, {"jobs": [record.to_dict() for record in self.service.jobs()]}
                )
            elif path.startswith("/jobs/"):
                self._get_job(path, query)
            else:
                self._send_json(404, {"error": f"no such route: {path}"})
        except BrokenPipeError:
            pass  # client went away mid-stream

    def do_POST(self) -> None:  # noqa: N802
        path, query = self._route()
        if path == "/jobs":
            self._submit(query)
        elif path.startswith("/jobs/") and path.endswith("/cancel"):
            job_id = path[len("/jobs/"):-len("/cancel")]
            ok = self.service.cancel(job_id)
            record = self.service.get(job_id)
            if record is None:
                self._send_json(404, {"error": f"no such job: {job_id}"})
            else:
                self._send_json(200, {"cancelled": ok, "job": record.to_dict()})
        else:
            self._send_json(404, {"error": f"no such route: {path}"})

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    def _submit(self, query: dict) -> None:
        try:
            request = JobRequest.from_dict(self._read_body())
        except BadRequestError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        try:
            record, coalesced = self.service.submit(request)
        except QueueFullError as exc:
            self._send_json(
                429,
                {"error": str(exc), "queue_depth": exc.depth},
                extra_headers={"Retry-After": f"{exc.retry_after_seconds:g}"},
            )
            return
        if query.get("wait") in ("1", "true", "yes"):
            timeout = min(float(query.get("timeout", 120.0)), MAX_WAIT_SECONDS)
            record = self.service.wait(record.job_id, timeout=timeout) or record
            if record.terminal:
                self._send_json(
                    200, {"coalesced": coalesced, **self.service.result_payload(record)}
                )
                return
        self._send_json(
            200 if coalesced else 202,
            {"coalesced": coalesced, "job": record.to_dict()},
        )

    def _get_job(self, path: str, query: dict) -> None:
        parts = path.split("/")  # '', 'jobs', <id>[, sub]
        job_id = parts[2] if len(parts) > 2 else ""
        sub = parts[3] if len(parts) > 3 else ""
        record = self.service.get(job_id)
        if record is None:
            self._send_json(404, {"error": f"no such job: {job_id}"})
            return
        if sub == "":
            self._send_json(200, record.to_dict())
        elif sub == "result":
            if not record.terminal:
                self._send_json(
                    409, {"error": f"job {job_id} is still {record.state}"}
                )
            else:
                self._send_json(200, self.service.result_payload(record))
        elif sub == "events":
            self._stream_events(record, query)
        else:
            self._send_json(404, {"error": f"no such route: {path}"})

    def _stream_events(self, record, query: dict) -> None:
        """Chunked JSON-lines stream of the job's event trace.

        Follows a live job until it reaches a terminal state (plus a
        final drain), then closes; a finished job streams its full
        trace and closes immediately.  ``?follow=0`` disables the
        live-follow and returns only what is on disk right now.
        """
        from repro.runtime import follow_trace, tail_trace

        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()

        def write_chunk(data: bytes) -> None:
            self.wfile.write(f"{len(data):x}\r\n".encode("ascii"))
            self.wfile.write(data + b"\r\n")

        try:
            if query.get("follow") in ("0", "false", "no"):
                records, _offset = tail_trace(record.events_path)
                for event in records:
                    write_chunk((canonical_json(event) + "\n").encode("utf-8"))
            else:
                for event in follow_trace(
                    record.events_path, stop=lambda: record.terminal
                ):
                    write_chunk((canonical_json(event) + "\n").encode("utf-8"))
            write_chunk(b"")  # terminating zero-length chunk
            self.wfile.write(b"\r\n")
        except BrokenPipeError:
            pass


class ServiceServer:
    """A running HTTP server bound to one :class:`MappingService`.

    Owns both lifecycles: ``start()`` spawns the service workers and
    the acceptor thread; ``stop()`` drains them.  Usable as a context
    manager (the pattern the CLI, the tests and the bench harness all
    share).
    """

    def __init__(
        self,
        config: Optional[ServiceConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
    ) -> None:
        self.service = MappingService(config)
        self.httpd = ThreadingHTTPServer((host, port), _Handler)
        self.httpd.daemon_threads = True
        self.httpd.service = self.service  # type: ignore[attr-defined]
        self.httpd.verbose = verbose  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServiceServer":
        self.service.start()
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.httpd.serve_forever,
                kwargs={"poll_interval": 0.1},
                name="svc-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.service.stop()

    def serve_forever(self) -> None:
        """Run the acceptor on the calling thread (the CLI path)."""
        self.service.start()
        try:
            self.httpd.serve_forever(poll_interval=0.1)
        finally:
            self.httpd.server_close()
            self.service.stop()

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
