"""The mapping service engine: dedup, queueing, workers, lifecycle.

:class:`MappingService` is the transport-independent core of the
serving stack (the HTTP layer in :mod:`repro.service.http` is a thin
adapter over it):

* **Deduplication** — submissions are identified by the content hash of
  their work (network digest + config cache key + seed + kind, see
  :meth:`~repro.service.jobs.JobRequest.materialize`).  An identical
  submission while the first is queued or running coalesces onto the
  same :class:`~repro.service.jobs.JobRecord` (same job id, one
  execution); one arriving after completion is served from the retained
  record, and a cold-started service re-serves old results through the
  content-addressed :class:`~repro.runtime.cache.ArtifactCache` without
  re-running the flow.
* **Backpressure** — a bounded priority :class:`~repro.service.queue.
  JobQueue`; submissions beyond capacity raise
  :class:`~repro.service.queue.QueueFullError` (HTTP 429).
* **Execution** — a pool of worker threads, each draining the queue
  through its own :class:`~repro.runtime.runner.Runner` wired to the
  shared artifact cache and the service-wide
  :class:`~repro.runtime.resilience.ResilienceConfig` (retries with
  deterministic backoff, per-job budgets, structured failures).
* **Progress** — every job runs under an :class:`~repro.runtime.events.
  EventLog` tracing to ``<spool>/<job_id>.jsonl``; clients stream it
  with :func:`~repro.runtime.events.tail_trace`/:func:`~repro.runtime.
  events.follow_trace` while the job is still writing.
* **Metrics** — queue depth, in-flight, cache-hit ratio and p50/p99
  latency through :class:`~repro.service.metrics.ServiceMetrics`,
  mirrored into the observability recorder.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.runtime import (
    ArtifactCache,
    DEFAULT_CACHE_DIR,
    EventLog,
    ResilienceConfig,
    RetryPolicy,
    Runner,
    SweepSpec,
    register_executor,
)
from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    JobRecord,
    JobRequest,
)
from repro.service.metrics import ServiceMetrics
from repro.service.queue import JobQueue, QueueFullError  # noqa: F401  (re-export)
from repro.utils.canonical import canonical


def _run_verify_flow(network, config, rng):
    """Executor behind ``verify`` jobs: run the flow, verify the design."""
    from repro.core.autoncs import AutoNCS
    from repro.verify.verifier import verify_flow

    result = AutoNCS(config).run(network, rng=rng)
    return verify_flow(result)


register_executor("verify_flow", _run_verify_flow)


def summarize_result(value: Any) -> Any:
    """A JSON-compatible summary of a flow result (the wire form)."""
    from repro.runtime.runner import SweepResult

    if isinstance(value, SweepResult):
        return canonical(
            {
                "kind": "sweep",
                "executed": value.executed,
                "cache_hits": value.cache_hits,
                "failures": [failure.to_dict() for failure in value.failures],
                "cells": value.cell_rows(),
            }
        )
    if hasattr(value, "to_dict"):
        return canonical(value.to_dict())
    return repr(value)


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one :class:`MappingService` instance."""

    workers: int = 2
    max_queue: int = 64
    cache_dir: os.PathLike = DEFAULT_CACHE_DIR
    max_cache_bytes: Optional[int] = None
    spool_dir: Optional[os.PathLike] = None
    retries: int = 2
    timeout_seconds: Optional[float] = None
    #: Completed records retained in memory (older ones still serve
    #: through the artifact cache, just under a fresh job id).
    keep_records: int = 1024

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.keep_records < 1:
            raise ValueError(f"keep_records must be >= 1, got {self.keep_records}")

    def resolved_spool_dir(self) -> Path:
        if self.spool_dir is not None:
            return Path(self.spool_dir)
        return Path(self.cache_dir) / "service-events"

    def resilience(self) -> ResilienceConfig:
        return ResilienceConfig(
            retry=RetryPolicy(max_attempts=max(1, self.retries)),
            timeout_seconds=self.timeout_seconds,
            fail_fast=False,
        )


class MappingService:
    """The async job layer over the runtime engine (see module docs).

    ``workers=0`` builds a service that admits and queues jobs but
    never executes them — useful for tests exercising the queueing,
    dedup and backpressure paths in isolation; call :meth:`start`
    after raising ``workers`` via a new config, or drive jobs manually.
    """

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.cache = ArtifactCache(
            self.config.cache_dir, max_bytes=self.config.max_cache_bytes
        )
        self.metrics = ServiceMetrics()
        self.queue = JobQueue(max_depth=self.config.max_queue)
        self.spool_dir = self.config.resolved_spool_dir()
        self._records: Dict[str, JobRecord] = {}
        self._work: Dict[str, Any] = {}
        self._active_by_key: Dict[str, str] = {}
        self._done_by_key: Dict[str, str] = {}
        self._retained: List[str] = []  # completion order, for trimming
        self._in_flight = 0
        self._seq = itertools.count(1)
        self._lock = threading.Lock()
        self._terminal = threading.Condition(self._lock)
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "MappingService":
        """Spawn the worker pool (idempotent)."""
        if self._threads:
            return self
        self._stop.clear()
        for index in range(self.config.workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"svc-worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Stop the workers (running jobs finish; queued jobs stay queued)."""
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads = []

    def __enter__(self) -> "MappingService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Submission / dedup
    # ------------------------------------------------------------------
    def submit(self, request: JobRequest) -> Tuple[JobRecord, bool]:
        """Admit one request; returns ``(record, coalesced)``.

        ``coalesced`` is true when the submission was served by an
        existing record (an identical job in flight, or one already
        completed and retained) — the caller got a job id without
        adding any work.  Raises :class:`QueueFullError` when the
        queue is at capacity (shed, not buffered).
        """
        self.metrics.count("requests")
        work, key = request.materialize()
        with self._lock:
            active_id = self._active_by_key.get(key)
            if active_id is not None:
                record = self._records[active_id]
                record.submissions += 1
                self.metrics.count("dedup_coalesced")
                return record, True
            done_id = self._done_by_key.get(key)
            if done_id is not None:
                record = self._records[done_id]
                if record.state == DONE:
                    record.submissions += 1
                    self.metrics.count("cache_hits")
                    return record, True
                # A failed/cancelled record does not satisfy new
                # submissions — fall through and try again.
            job_id = f"j{next(self._seq):06d}-{key[:8]}"
            record = JobRecord(
                job_id=job_id,
                key=key,
                request=request,
                events_path=str(self.spool_dir / f"{job_id}.jsonl"),
            )
            try:
                self.queue.put(job_id, priority=request.priority)
            except QueueFullError:
                self.metrics.count("queue_rejections")
                raise
            self._records[job_id] = record
            self._work[job_id] = work
            self._active_by_key[key] = job_id
            self.metrics.count("submitted")
            self.metrics.gauge("queue_depth", self.queue.depth)
        return record, False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Optional[JobRecord]:
        with self._lock:
            return self._records.get(job_id)

    def jobs(self) -> List[JobRecord]:
        """Every retained record, oldest first."""
        with self._lock:
            return sorted(self._records.values(), key=lambda r: r.created)

    def wait(self, job_id: str, timeout: Optional[float] = None) -> Optional[JobRecord]:
        """Block until the job reaches a terminal state (or timeout)."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._terminal:
            while True:
                record = self._records.get(job_id)
                if record is None or record.terminal:
                    return record
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return record
                self._terminal.wait(timeout=remaining)

    def cancel(self, job_id: str) -> bool:
        """Cancel a *queued* job; running/terminal jobs are untouched."""
        with self._terminal:
            record = self._records.get(job_id)
            if record is None or record.state != QUEUED:
                return False
            self.queue.remove(job_id)
            record.state = CANCELLED
            record.finished = time.time()
            self._active_by_key.pop(record.key, None)
            self._work.pop(job_id, None)
            self.metrics.count("cancelled")
            self._terminal.notify_all()
        return True

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            in_flight = self._in_flight
        depth = self.queue.depth
        self.metrics.gauge("queue_depth", depth)
        self.metrics.gauge("in_flight", in_flight)
        return self.metrics.snapshot(
            queue_depth=depth, in_flight=in_flight, cache=self.cache
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while not self._stop.is_set():
            job_id = self.queue.get(timeout=0.2)
            if job_id is None:
                continue
            with self._lock:
                record = self._records.get(job_id)
                if record is None or record.state != QUEUED:
                    continue  # cancelled while queued
                record.state = RUNNING
                record.started = time.time()
                work = self._work.pop(job_id, None)
                self._in_flight += 1
                self.metrics.gauge("in_flight", self._in_flight)
                self.metrics.gauge("queue_depth", self.queue.depth)
            try:
                self._execute(record, work)
            finally:
                with self._terminal:
                    self._in_flight -= 1
                    self._active_by_key.pop(record.key, None)
                    if record.state == DONE:
                        self._done_by_key[record.key] = record.job_id
                    self._retained.append(record.job_id)
                    self._trim_records_locked()
                    self.metrics.gauge("in_flight", self._in_flight)
                    self._terminal.notify_all()
                latency = record.latency_seconds
                if latency is not None:
                    self.metrics.observe_latency(latency)

    def _execute(self, record: JobRecord, work: Any) -> None:
        self.spool_dir.mkdir(parents=True, exist_ok=True)
        try:
            with EventLog(trace_path=record.events_path) as events:
                runner = Runner(
                    n_jobs=1,
                    cache=self.cache,
                    events=events,
                    resilience=self.config.resilience(),
                )
                if isinstance(work, SweepSpec):
                    self._finish_sweep(record, runner.run_sweep(work))
                else:
                    self._finish_single(record, runner.run([work]))
        except Exception as exc:  # defensive: a worker must never die
            self._mark_failed(record, f"{type(exc).__name__}: {exc}")

    def _finish_single(self, record: JobRecord, results) -> None:
        outcome = results[0]
        record.attempts = outcome.attempts
        if outcome.failure is not None:
            self._mark_failed(
                record,
                f"{outcome.failure.failure}: {outcome.failure.message}",
            )
            return
        record.result = outcome.value
        record.cache_hit = outcome.cache_hit
        record.state = DONE
        record.finished = time.time()
        self._note_completion(record)

    def _finish_sweep(self, record: JobRecord, sweep) -> None:
        record.result = sweep
        record.cache_hit = sweep.executed == 0 and len(sweep.results) > 0
        if sweep.failures:
            self._mark_failed(
                record,
                f"{len(sweep.failures)}/{len(sweep.results)} sweep cell(s) failed",
            )
            return
        record.state = DONE
        record.finished = time.time()
        self._note_completion(record)

    def _note_completion(self, record: JobRecord) -> None:
        self.metrics.count("completed")
        if record.cache_hit:
            self.metrics.count("cache_hits")
        else:
            self.metrics.count("jobs_executed")

    def _mark_failed(self, record: JobRecord, message: str) -> None:
        record.error = message
        record.state = FAILED
        record.finished = time.time()
        self.metrics.count("failed")

    def _trim_records_locked(self) -> None:
        """Drop the oldest completed records beyond ``keep_records``."""
        while len(self._retained) > self.config.keep_records:
            job_id = self._retained.pop(0)
            record = self._records.pop(job_id, None)
            if record is not None:
                if self._done_by_key.get(record.key) == job_id:
                    self._done_by_key.pop(record.key, None)

    # ------------------------------------------------------------------
    def result_payload(self, record: JobRecord) -> Dict[str, Any]:
        """The ``GET /jobs/<id>/result`` body for a finished job."""
        return {
            "job_id": record.job_id,
            "state": record.state,
            "cache_hit": record.cache_hit,
            "latency_seconds": record.latency_seconds,
            "result": summarize_result(record.result),
        }
