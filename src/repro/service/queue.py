"""Bounded, priority-ordered job queue with backpressure.

The service admits at most ``max_depth`` queued jobs; a submission that
would exceed the bound raises :class:`QueueFullError`, which the HTTP
layer turns into ``429 Too Many Requests`` with a ``Retry-After`` hint
— load is *shed at the door* instead of accumulating unbounded memory
and unbounded latency.  Within the bound, higher ``priority`` dequeues
first; ties dequeue in submission order (a stable FIFO per priority).

Cancellation is lazy: :meth:`JobQueue.remove` marks the entry and
:meth:`JobQueue.get` discards marked entries on the way out, so cancel
is O(1) and never reheaps.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Optional


class QueueFullError(Exception):
    """The queue is at capacity; retry after ``retry_after_seconds``."""

    def __init__(self, depth: int, retry_after_seconds: float = 1.0) -> None:
        super().__init__(f"job queue is full ({depth} queued)")
        self.depth = depth
        self.retry_after_seconds = retry_after_seconds


class JobQueue:
    """A thread-safe bounded max-priority queue of job ids."""

    def __init__(self, max_depth: int = 64) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.max_depth = int(max_depth)
        self._heap: list = []  # (-priority, seq, job_id)
        self._cancelled: set = set()
        self._seq = itertools.count()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)

    def put(self, job_id: str, priority: int = 0) -> None:
        """Enqueue; raises :class:`QueueFullError` at capacity."""
        with self._lock:
            if self.depth_locked() >= self.max_depth:
                raise QueueFullError(self.depth_locked())
            heapq.heappush(self._heap, (-int(priority), next(self._seq), job_id))
            self._not_empty.notify()

    def get(self, timeout: Optional[float] = None) -> Optional[str]:
        """Dequeue the highest-priority job id, or ``None`` on timeout."""
        with self._not_empty:
            while True:
                while self._heap:
                    _neg, _seq, job_id = heapq.heappop(self._heap)
                    if job_id in self._cancelled:
                        self._cancelled.discard(job_id)
                        continue
                    return job_id
                if not self._not_empty.wait(timeout=timeout):
                    return None

    def remove(self, job_id: str) -> None:
        """Mark a queued job id so :meth:`get` will skip it."""
        with self._lock:
            if any(entry[2] == job_id for entry in self._heap):
                self._cancelled.add(job_id)

    def depth_locked(self) -> int:
        return len(self._heap) - len(self._cancelled)

    @property
    def depth(self) -> int:
        """Live queued entries (excluding lazily cancelled ones)."""
        with self._lock:
            return self.depth_locked()
