"""CI smoke for the mapping service against a live server.

Drives a fixed-seed map + verify + sweep mix through the HTTP client,
resubmits the map request to force a dedup/cache hit, and asserts the
serving mix the server reports.  Exits non-zero (with the stats dump)
on any miss so the workflow can upload the server log.
"""

import json
import sys

sys.path.insert(0, "src")

from repro.service.client import ServiceClient  # noqa: E402

MIX = [
    {"kind": "map", "neurons": 24, "density": 0.2, "seed": 7},
    {"kind": "verify", "neurons": 24, "density": 0.2, "seed": 7},
    {"kind": "sweep", "sizes": [16, 20], "densities": [0.2], "seed": 7},
    # Identical to the first request: must be served by dedup or cache,
    # never a second execution.
    {"kind": "map", "neurons": 24, "density": 0.2, "seed": 7},
]


def main() -> int:
    base_url = sys.argv[1] if len(sys.argv) > 1 else "http://127.0.0.1:8787"
    client = ServiceClient(base_url, timeout=300)
    assert client.healthy(), "server did not answer /healthz"

    for payload in MIX:
        done = client.submit(payload, wait=True, timeout=300)
        print(f"{payload['kind']:>6}: {done['state']} "
              f"(coalesced={done['coalesced']}, cache_hit={done['cache_hit']})")
        assert done["state"] == "done", f"job not green: {done}"
    repeat = client.submit(MIX[0], wait=True, timeout=300)
    assert repeat["coalesced"], "identical resubmission did not coalesce"

    stats = client.stats()
    print(json.dumps(stats, indent=2))
    served_without_execution = (
        stats["counters"].get("cache_hits", 0)
        + stats["counters"].get("dedup_coalesced", 0)
    )
    assert served_without_execution >= 1, "expected at least one dedup/cache hit"
    assert stats["counters"].get("failed", 0) == 0, "server recorded failed jobs"
    return 0


if __name__ == "__main__":
    sys.exit(main())
