#!/usr/bin/env python
"""Scalability sweep: reductions vs network size (paper Sec. 4.3 claim).

"Table 1 also shows that wirelength and area reductions increase with the
scale of NCS, which implies the scalability and adaptability of our
AutoNCS to large-scale NCS."  This example sweeps synthetic networks of
growing size through the reduced-effort flow and prints the trend.

Run:  python examples/scale_sweep.py
"""

import time

import numpy as np

import repro
from repro.core.config import fast_config
from repro.networks import block_diagonal_network


def scattered_blocks(n_target: int, rng_seed: int):
    """A network of ~n_target neurons in dense groups, scattered indices."""
    sizes = []
    remaining = n_target
    rng = np.random.default_rng(rng_seed)
    while remaining > 0:
        size = int(rng.integers(20, 36))
        sizes.append(min(size, remaining))
        remaining -= size
    blocks = block_diagonal_network(
        sizes, within_density=0.45, between_density=0.01, rng=rng_seed
    )
    order = np.random.default_rng(rng_seed + 1).permutation(blocks.size)
    return blocks.permuted(order)


def main() -> None:
    config = fast_config()
    print(f"{'N':>6}{'WL reduc.':>12}{'area reduc.':>13}{'delay reduc.':>14}{'time':>8}")
    for n in (96, 160, 224, 288):
        network = scattered_blocks(n, rng_seed=n)
        start = time.perf_counter()
        report = repro.compare(network, config=config, seed=7)
        elapsed = time.perf_counter() - start
        print(
            f"{network.size:>6}"
            f"{report.wirelength_reduction:>11.1f}%"
            f"{report.area_reduction:>12.1f}%"
            f"{report.delay_reduction:>13.1f}%"
            f"{elapsed:>7.1f}s"
        )
    print(
        "\nThe paper's trend: the bigger the network relative to the 64x64 "
        "crossbar, the more the brute-force baseline wastes — reductions "
        "grow with N."
    )


if __name__ == "__main__":
    main()
