#!/usr/bin/env python
"""The paper's testbench flow: QR patterns → sparse Hopfield → AutoNCS.

Reproduces the Sec. 4.1 testbench construction end to end on testbench 1
(M=15 patterns, N=300 neurons, 94.47 % sparsity):

1. generate random QR-code-like patterns,
2. store them in a Hopfield network (Hebbian rule), prune to the exact
   paper sparsity, and retrain for stability,
3. verify the recognition rate is above the paper's 90 % bar,
4. run ISC and inspect the per-iteration statistics (the Fig. 7 panels),
5. replay recall on the *mapped hardware* with analog non-idealities.

Run:  python examples/hopfield_qr_testbench.py
"""

import numpy as np

from repro.experiments import build_testbench
from repro.hardware.simulation import HybridNcsSimulator, NonIdealityModel
from repro.mapping import autoncs_mapping, fullcro_utilization
from repro.clustering import iterative_spectral_clustering
from repro.networks.patterns import corrupt_pattern


def main() -> None:
    instance = build_testbench(1, rng=42)
    network = instance.network
    print(f"testbench      : {instance.testbench.label}")
    print(f"network        : {network}")
    print(f"target sparsity: {instance.testbench.target_sparsity:.4f} "
          f"(achieved {network.sparsity:.4f})")

    rate = instance.recognition_rate(rng=0)
    print(f"recognition    : {rate:.1%} (paper requires > 90 %)")

    # --- ISC --------------------------------------------------------------
    threshold = fullcro_utilization(network, 64)
    isc = iterative_spectral_clustering(network, utilization_threshold=threshold, rng=0)
    print(f"\nISC stopped after {isc.iterations} iterations "
          f"(threshold u >= {threshold:.4f})")
    for record in isc.records:
        print(f"  iter {record.iteration:2d}: +{record.crossbars_placed:3d} crossbars, "
              f"avg u = {record.average_utilization:.3f}, "
              f"outliers left = {record.outlier_ratio_after:.1%}")
    mapping = autoncs_mapping(isc)
    print(f"final          : {mapping.num_crossbars} crossbars, "
          f"{mapping.num_synapses} discrete synapses, "
          f"sizes {mapping.crossbar_size_histogram()}")

    # --- recall on the mapped analog hardware ------------------------------
    model = NonIdealityModel(
        variation_sigma=0.05,       # memristor programming variation
        stuck_off_probability=0.001,
        ir_drop_coefficient=0.002,  # grows with crossbar size
    )
    simulator = HybridNcsSimulator(isc, signed_weights=instance.hopfield.weights,
                                   model=model, rng=7)
    rng = np.random.default_rng(3)
    hits = 0
    trials = 0
    for pattern in instance.hopfield.patterns:
        probe = corrupt_pattern(pattern, 0.05, rng=rng)
        recalled = simulator.recall(probe)
        agreement = float(np.mean(recalled == pattern))
        hits += max(agreement, 1 - agreement) >= 0.9
        trials += 1
    print(f"\nhardware recall (with variation + defects + IR-drop): "
          f"{hits}/{trials} patterns recognized")


if __name__ == "__main__":
    main()
