#!/usr/bin/env python
"""Quickstart: run the complete AutoNCS flow on a small sparse network.

This walks the whole pipeline on a 120-neuron network in a few seconds:

1. generate a sparse network,
2. cluster its connections with ISC (MSC + GCP + partial selection),
3. map clusters to library crossbars and outliers to discrete synapses,
4. place & route the netlist, evaluate wirelength / area / delay,
5. compare against the brute-force FullCro baseline.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro
from repro.core.config import fast_config
from repro.networks import block_diagonal_network


def main() -> None:
    # A 160-neuron network made of dense functional groups whose neurons
    # are scattered over the index space (hardware neuron numbering is
    # arbitrary).  Blind 64x64 tiling straddles the groups and wastes most
    # memristors; AutoNCS re-discovers them by spectral clustering.
    blocks = block_diagonal_network(
        [36, 34, 32, 30, 28], within_density=0.4, between_density=0.01, rng=42
    )
    order = np.random.default_rng(42).permutation(blocks.size)
    network = blocks.permuted(order).copy(name="quickstart")
    print(f"input network : {network}")

    config = fast_config()

    # --- the AutoNCS flow (the stable facade: repro.map_network) ----------
    result = repro.map_network(network, config=config, seed=42)
    print(f"\nISC finished in {result.isc.iterations} iterations")
    print(f"  crossbars placed   : {result.mapping.num_crossbars}")
    print(f"  crossbar sizes     : {result.mapping.crossbar_size_histogram()}")
    print(f"  discrete synapses  : {result.mapping.num_synapses}")
    print(f"  outlier ratio      : {result.isc.outlier_ratio:.1%}")
    print(f"  avg utilization    : {result.mapping.average_utilization:.3f}")

    # --- the physical design ----------------------------------------------
    cost = result.design.cost
    print("\nAutoNCS physical design")
    print(f"  total wirelength   : {cost.wirelength_um:,.1f} um")
    print(f"  placement area     : {cost.area_um2:,.1f} um^2")
    print(f"  average wire delay : {cost.average_delay_ns:.2f} ns")

    # --- versus the baseline ----------------------------------------------
    baseline = repro.AutoNCS(config).run_baseline(network, rng=42)
    print("\nFullCro baseline (only 64x64 crossbars)")
    print(f"  total wirelength   : {baseline.cost.wirelength_um:,.1f} um")
    print(f"  placement area     : {baseline.cost.area_um2:,.1f} um^2")
    print(f"  average wire delay : {baseline.cost.average_delay_ns:.2f} ns")

    wl = (1 - cost.wirelength_um / baseline.cost.wirelength_um) * 100
    ar = (1 - cost.area_um2 / baseline.cost.area_um2) * 100
    dl = (1 - cost.average_delay_ns / baseline.cost.average_delay_ns) * 100
    print(f"\nAutoNCS reductions: wirelength {wl:.1f}%, area {ar:.1f}%, delay {dl:.1f}%")


if __name__ == "__main__":
    main()
