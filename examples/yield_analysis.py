#!/usr/bin/env python
"""Monte-Carlo yield analysis with fault-aware repair (extension).

The paper maps networks onto ideal crossbars; real memristor arrays ship
with stuck-at cells and broken nano-wire lines.  This example maps a
scaled-down testbench 1 with AutoNCS, samples defective chips at several
stuck-off cell rates, and compares the functional yield (hardware recall
still recognizes >= 90 % of stored patterns) of the raw design against the
same design after the :mod:`repro.reliability` repair pass re-binds
clusters onto healthier crossbars and demotes dead cells to discrete
synapses.

Run:  python examples/yield_analysis.py
"""

from repro.experiments.reliability import run_reliability_experiment


def main() -> None:
    result = run_reliability_experiment(
        testbench=1,
        dimension=100,
        defect_rates=(0.0, 0.2, 0.4),
        samples=5,
        spare_instances=2,
        rng=7,
    )
    print(result.format())
    print(
        "\nEach row samples defective chips at one stuck-off cell rate; the "
        "repaired columns re-bind crossbar clusters onto healthier physical "
        "arrays (plus spares) and demote unreachable connections to discrete "
        "synapses before measuring the same probes again."
    )


if __name__ == "__main__":
    main()
