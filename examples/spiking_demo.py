#!/usr/bin/env python
"""Spike-level simulation of a mapped crossbar (paper Fig. 1 behaviour).

The paper's Fig. 1(a) output neuron is an integrate-and-fire circuit fed
by memristor synapse currents.  This demo wires the behavioural models
together at the spike level:

1. program a small crossbar with a weight pattern,
2. drive its rows with Poisson input spike trains,
3. integrate the column currents on integrate-and-fire neurons,
4. show that output firing rates track the programmed weights.

Run:  python examples/spiking_demo.py
"""

import numpy as np

from repro.hardware.neuron import IntegrateFireNeuron
from repro.hardware.simulation import CrossbarSimulator, NonIdealityModel


def main() -> None:
    rng = np.random.default_rng(21)
    size = 8
    # column j's weights scale with j: later columns integrate more current
    weights = np.tile(np.linspace(0.1, 0.9, size), (size, 1))
    crossbar = CrossbarSimulator(
        weights, model=NonIdealityModel(variation_sigma=0.03), rng=rng
    )
    # Crossbar column currents are in the hundreds of µA (r_on = 1 kΩ at
    # 0.3 V); a 50 pF membrane keeps the per-step voltage increment well
    # below threshold so the firing rate resolves the weight differences.
    neurons = [
        IntegrateFireNeuron(capacitance_ff=50_000.0, threshold_v=0.4)
        for _ in range(size)
    ]

    read_voltage = 0.3     # volts on active rows
    dt_ns = 10.0           # timestep
    rate = 0.35            # per-row spike probability per step
    steps = 400

    spike_counts = np.zeros(size, dtype=int)
    for _ in range(steps):
        active_rows = (rng.random(size) < rate).astype(float)
        currents_a = crossbar.output_currents(active_rows * read_voltage)
        for j, neuron in enumerate(neurons):
            if neuron.integrate(currents_a[j] * 1e9, dt_ns):  # A -> nA
                spike_counts[j] += 1

    print("column weight -> output spikes over "
          f"{steps} steps ({steps * dt_ns:.0f} ns):\n")
    print(f"{'column':>8}{'mean weight':>14}{'spikes':>9}{'rate (MHz)':>12}")
    for j in range(size):
        mhz = spike_counts[j] / (steps * dt_ns * 1e-9) / 1e6
        print(f"{j:>8}{weights[:, j].mean():>14.2f}{spike_counts[j]:>9}{mhz:>12.1f}")

    correlation = np.corrcoef(weights.mean(axis=0), spike_counts)[0, 1]
    print(f"\nweight-to-rate correlation: {correlation:.3f}")
    assert correlation > 0.9, "firing rates must track the programmed weights"
    print("output firing rates follow the programmed synaptic weights.")


if __name__ == "__main__":
    main()
