#!/usr/bin/env python
"""Why crossbars are capped at 64x64 (paper Sec. 2.1, reference [6]).

The paper limits its crossbar library to 64x64 because IR-drop, device
defects and process variation make larger arrays unreliable.  This example
sweeps the crossbar size with the analog simulator and shows the computing
error growing with the array dimension — the quantitative version of that
design constraint.

Run:  python examples/crossbar_reliability.py
"""

import numpy as np

from repro.hardware.simulation import CrossbarSimulator, NonIdealityModel


def main() -> None:
    rng = np.random.default_rng(9)
    model = NonIdealityModel(
        variation_sigma=0.08,
        stuck_off_probability=0.002,
        stuck_on_probability=0.0005,
        ir_drop_coefficient=0.004,
    )
    print("crossbar computing error vs array size "
          "(variation sigma=0.08, defects 0.25 %, IR-drop on)\n")
    print(f"{'size':>6}{'relative RMS error':>22}")
    errors = {}
    for size in (16, 32, 48, 64, 96, 128, 192, 256):
        trials = []
        for trial in range(5):
            weights = rng.random((size, size))
            inputs = rng.choice([0.0, 1.0], size=size)
            simulator = CrossbarSimulator(weights, model=model, rng=rng)
            trials.append(simulator.relative_error(inputs, weights))
        errors[size] = float(np.mean(trials))
        print(f"{size:>6}{errors[size]:>21.4f}")
    print(
        "\nThe error grows monotonically with the array size; beyond ~64 the "
        "degradation accelerates, matching the paper's choice of 64 as the "
        "largest reliable crossbar."
    )
    assert errors[256] > errors[16], "IR-drop model must penalize large arrays"


if __name__ == "__main__":
    main()
