#!/usr/bin/env python
"""A close look at the customized physical design flow (paper Sec. 3.5).

Builds a small hybrid design, then walks Algorithm 4 step by step:

* the λ-doubling penalty schedule (wirelength vs density trade-off),
* legalization,
* maze routing with virtual capacity and the congestion map,
* the eq. (3) cost breakdown.

Renders the placement and the congestion map as ASCII art so no plotting
library is needed.

Run:  python examples/placement_routing_demo.py
"""

import numpy as np

from repro.clustering import iterative_spectral_clustering
from repro.mapping import autoncs_mapping, fullcro_utilization
from repro.networks import block_diagonal_network
from repro.physical import evaluate_cost, place, route
from repro.physical.placement.placer import PlacementConfig


def ascii_layout(placement, kinds, columns: int = 64, rows: int = 24) -> str:
    """Render cells as characters on a coarse character grid."""
    xmin, ymin, xmax, ymax = placement.bounding_box()
    span_x = max(xmax - xmin, 1e-9)
    span_y = max(ymax - ymin, 1e-9)
    canvas = [[" "] * columns for _ in range(rows)]
    symbol = {"neuron": ".", "crossbar": "#", "synapse": "+"}
    order = np.argsort([-w * h for w, h in zip(placement.widths, placement.heights)])
    for i in order:
        c = int((placement.x[i] - xmin) / span_x * (columns - 1))
        r = int((placement.y[i] - ymin) / span_y * (rows - 1))
        canvas[rows - 1 - r][c] = symbol[kinds[i]]
    return "\n".join("".join(line) for line in canvas)


def ascii_heatmap(grid: np.ndarray, columns: int = 64, rows: int = 24) -> str:
    """Render a congestion map with density characters."""
    shades = " .:-=+*#%@"
    nx, ny = grid.shape
    peak = grid.max() if grid.size else 1.0
    canvas = []
    for r in range(rows - 1, -1, -1):
        line = []
        for c in range(columns):
            gx = min(int(c / columns * nx), nx - 1)
            gy = min(int(r / rows * ny), ny - 1)
            value = grid[gx, gy] / peak if peak else 0.0
            line.append(shades[min(int(value * (len(shades) - 1)), len(shades) - 1)])
        canvas.append("".join(line))
    return "\n".join(canvas)


def main() -> None:
    network = block_diagonal_network([40, 35, 30, 25], within_density=0.5,
                                     between_density=0.02, rng=3)
    threshold = fullcro_utilization(network, 64)
    isc = iterative_spectral_clustering(network, utilization_threshold=threshold, rng=3)
    mapping = autoncs_mapping(isc)
    netlist = mapping.netlist
    print(f"netlist: {netlist.num_cells} cells ({mapping.num_crossbars} crossbars, "
          f"{mapping.num_synapses} synapses), {netlist.num_wires} wires")

    config = PlacementConfig(max_lambda_stages=8, cg_iterations_per_stage=30)
    placement = place(netlist, config=config, rng=3)
    print("\npenalty schedule (Algorithm 4):")
    for stage in placement.metadata["stages"]:
        print(f"  stage {stage['stage']}: lambda={stage['lambda']:.3g}  "
              f"objective={stage['objective']:.1f}  "
              f"overlap={stage['overlap_ratio']:.2%}")
    legal = placement.metadata["legalization"]
    print(f"legalization: {legal['method']} "
          f"(winning snapshot: {placement.metadata['chosen_snapshot']})")
    print(f"weighted HPWL seed / legalized / compacted: "
          f"{placement.metadata['hpwl_seed']:,.0f} / "
          f"{placement.metadata['hpwl_after_legalization']:,.0f} / "
          f"{placement.metadata['hpwl_after_compaction']:,.0f} um")

    kinds = [cell.kind.value for cell in netlist.cells]
    print("\nplacement ('#' crossbar, '.' neuron, '+' synapse):")
    print(ascii_layout(placement, kinds))

    routing = route(netlist, placement)
    print(f"\nrouting: {len(routing.wires)} wires, "
          f"{routing.relax_rounds} capacity-relax rounds, "
          f"{routing.overflow_wires} overflowed wires")
    print("congestion map (darker = more wires):")
    print(ascii_heatmap(routing.congestion_map()))

    cost = evaluate_cost(netlist, placement, routing)
    print(f"\ncost (eq. 3, alpha=beta=delta=1):")
    print(f"  L = {cost.wirelength_um:,.1f} um")
    print(f"  A = {cost.area_um2:,.1f} um^2")
    print(f"  T = {cost.average_delay_ns:.3f} ns")
    print(f"  total = {cost.total:,.1f}")


if __name__ == "__main__":
    main()
