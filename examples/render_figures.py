#!/usr/bin/env python
"""Render the paper-figure artefacts as SVG files (no plotting libs).

Produces, for a small testbench-style network:

* ``figures/matrix_original.svg``  — the scattered connection matrix
  (Fig. 3(a) style);
* ``figures/matrix_clustered.svg`` — the same matrix permuted by the ISC
  clusters with red cluster overlays (Fig. 3(b)/Fig. 6 style);
* ``figures/layout_autoncs.svg`` / ``figures/layout_fullcro.svg`` — the
  placed designs (Fig. 10(a)/(c) style);
* ``figures/congestion_*.svg``     — the routed congestion heat maps
  (Fig. 10(b)/(d) style).

Run:  python examples/render_figures.py
"""

import pathlib

from repro.core import AutoNCS
from repro.core.config import fast_config
from repro.experiments.testbenches import Testbench, build_testbench
from repro.viz import congestion_to_svg, layout_to_svg, matrix_to_svg, save_svg

OUTPUT = pathlib.Path("figures")


def main() -> None:
    OUTPUT.mkdir(exist_ok=True)
    # a miniature testbench keeps this example fast (~1 min)
    descriptor = Testbench(index=0, num_patterns=8, dimension=180, target_sparsity=0.92)
    instance = build_testbench(descriptor, rng=11)
    network = instance.network
    print(f"network: {network}")

    flow = AutoNCS(fast_config())
    result = flow.run(network, rng=11)
    baseline = flow.run_baseline(network, rng=11)

    save_svg(
        matrix_to_svg(network, title="original connection matrix"),
        OUTPUT / "matrix_original.svg",
    )
    # Neurons can appear in several crossbars (one per ISC iteration);
    # keep each neuron at its first cluster for the matrix permutation.
    clusters = [assignment.members for assignment in result.isc.crossbars]
    order = []
    seen = set()
    boxes = []
    for cluster in clusters:
        fresh = [m for m in cluster if m not in seen]
        if fresh:
            boxes.append(range(len(order), len(order) + len(fresh)))
            order.extend(fresh)
            seen.update(fresh)
    order += [i for i in range(network.size) if i not in seen]
    permuted = network.permuted(order)
    save_svg(
        matrix_to_svg(permuted, clusters=boxes, title="after ISC (clusters boxed)"),
        OUTPUT / "matrix_clustered.svg",
    )

    for name, design in (("autoncs", result.design), ("fullcro", baseline)):
        kinds = [cell.kind.value for cell in design.mapping.netlist.cells]
        save_svg(
            layout_to_svg(design.placement, kinds, title=f"{name} layout"),
            OUTPUT / f"layout_{name}.svg",
        )
        save_svg(
            congestion_to_svg(design.routing.congestion_map(), title=f"{name} congestion"),
            OUTPUT / f"congestion_{name}.svg",
        )
    print(f"wrote 6 SVG files to {OUTPUT}/")


if __name__ == "__main__":
    main()
