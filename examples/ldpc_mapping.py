#!/usr/bin/env python
"""Mapping an LDPC message-passing network (the paper's Sec. 2.2 motivation).

The paper motivates AutoNCS with LDPC decoding in IEEE 802.11: the
variable/check Tanner graph is >99 % sparse, so tiling it with full
64x64 crossbars is extremely wasteful.  This example builds a regular
(3,6) LDPC network, shows how poor the FullCro utilization is, and lets
AutoNCS carve out the denser sub-structures.

Run:  python examples/ldpc_mapping.py
"""

from repro.clustering import iterative_spectral_clustering
from repro.mapping import autoncs_mapping, fullcro_mapping, fullcro_utilization
from repro.networks import ldpc_network


def main() -> None:
    # 168 variables, column weight 3, row weight 6 -> 84 checks, 252 nodes.
    network = ldpc_network(168, column_weight=3, row_weight=6, rng=11)
    print(f"LDPC network   : {network}")
    print(f"sparsity       : {network.sparsity:.2%} "
          f"(the paper quotes > 99 % for 802.11 codes)")

    baseline = fullcro_mapping(network)
    print(f"\nFullCro        : {baseline.num_crossbars} crossbars of 64x64, "
          f"avg utilization {baseline.average_utilization:.3%}")

    threshold = fullcro_utilization(network, 64)
    isc = iterative_spectral_clustering(network, utilization_threshold=threshold, rng=5)
    mapping = autoncs_mapping(isc)
    print(f"AutoNCS        : {mapping.num_crossbars} crossbars "
          f"{mapping.crossbar_size_histogram()}, "
          f"{mapping.num_synapses} discrete synapses")
    print(f"  avg utilization : {mapping.average_utilization:.3%} "
          f"({mapping.average_utilization / max(baseline.average_utilization, 1e-12):.1f}x the baseline)")
    print(f"  outlier ratio   : {isc.outlier_ratio:.1%} of connections on synapses")

    before = baseline.fanin_fanout().average_total
    after = mapping.fanin_fanout().average_total
    print(f"  avg fanin+fanout: {after:.2f} wires/neuron vs {before:.2f} baseline "
          f"({after / before:.0%})")


if __name__ == "__main__":
    main()
