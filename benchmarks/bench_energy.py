"""Energy comparison (extension) — AutoNCS vs FullCro on the testbenches.

Not a paper table: the paper motivates memristors by their "low
programming energy" but evaluates only wirelength/area/delay.  This bench
quantifies read energy (idle devices bias-leak on crossbar lines),
programming energy/time, and interconnect switching energy.
"""

import pytest

from benchmarks.conftest import write_result
from repro.hardware.energy import evaluate_energy


@pytest.mark.parametrize("index", [1, 2, 3])
def test_energy_comparison(benchmark, cache, index):
    def compute():
        autoncs = cache.design(index, "autoncs")
        fullcro = cache.design(index, "fullcro")
        return (
            evaluate_energy(
                autoncs.mapping, routed_wirelength_um=autoncs.cost.wirelength_um
            ),
            evaluate_energy(
                fullcro.mapping, routed_wirelength_um=fullcro.cost.wirelength_um
            ),
        )

    ours, baseline = benchmark.pedantic(compute, rounds=1, iterations=1)

    lines = []
    for name, report in (("AutoNCS", ours), ("FullCro", baseline)):
        lines.append(
            f"{name}: read {report.read_energy_pj:10.2f} pJ  "
            f"wire {report.wire_energy_pj:8.3f} pJ  "
            f"program {report.programming_energy_pj:10.1f} pJ "
            f"in {report.programming_time_us:8.1f} us  "
            f"(utilized {report.utilized_devices}, idle {report.idle_devices})"
        )
    lines.append(
        f"read-energy reduction: "
        f"{(1 - ours.read_energy_pj / baseline.read_energy_pj) * 100:.1f}%"
    )
    write_result(f"energy_tb{index}", "\n".join(lines))

    # AutoNCS wastes fewer idle devices -> lower read energy
    assert ours.idle_devices < baseline.idle_devices
    assert ours.read_energy_pj < baseline.read_energy_pj
    # both implement the same connections
    assert ours.utilized_devices == baseline.utilized_devices
