"""Figure 8 — ISC analysis of testbench 2 (M=20, N=400).

Paper reference: same four panels as Fig. 7/9; testbench 2 behaves like
the other two (the paper reports "similar results are observed in
testbench 1 and 2").
"""

from benchmarks._isc_panels import run_panels


def test_fig8_tb2_panels(benchmark, cache):
    run_panels(
        benchmark,
        cache,
        index=2,
        paper_notes="paper: similar trends as Fig. 9 (testbench 3)",
    )
