"""Figure 10 — placement & routing of testbench 3, FullCro vs AutoNCS.

Paper reference: in FullCro the uniformly placed maximum-size crossbars
cause "heavy wire congestion in the center"; AutoNCS puts large crossbars
on the periphery with small crossbars and discrete synapses inside,
reducing wirelength, area and average delay substantially.
"""

import numpy as np

from benchmarks.conftest import RESULTS_DIR, write_result
from repro.viz import congestion_to_svg, layout_to_svg, save_svg


def _ascii_heatmap(grid: np.ndarray, columns: int = 48, rows: int = 20) -> str:
    shades = " .:-=+*#%@"
    nx, ny = grid.shape
    peak = grid.max() if grid.size else 1.0
    lines = []
    for r in range(rows - 1, -1, -1):
        line = []
        for c in range(columns):
            gx = min(int(c / columns * nx), nx - 1)
            gy = min(int(r / rows * ny), ny - 1)
            value = grid[gx, gy] / peak if peak else 0.0
            line.append(shades[min(int(value * (len(shades) - 1)), len(shades) - 1)])
        lines.append("".join(line))
    return "\n".join(lines)


def test_fig10_layouts_and_congestion(benchmark, cache):
    def compute():
        return (
            cache.design(3, "fullcro"),
            cache.design(3, "autoncs"),
        )

    fullcro, autoncs = benchmark.pedantic(compute, rounds=1, iterations=1)

    blocks = []
    for name, design in (("FullCro", fullcro), ("AutoNCS", autoncs)):
        congestion = design.routing.congestion_map()
        nx, ny = congestion.shape
        cx0, cx1 = nx // 3, max(2 * nx // 3, nx // 3 + 1)
        cy0, cy1 = ny // 3, max(2 * ny // 3, ny // 3 + 1)
        center_ratio = (
            float(congestion[cx0:cx1, cy0:cy1].mean()) / float(congestion.mean())
            if congestion.mean() > 0
            else 0.0
        )
        blocks.append(
            f"{name}: wirelength {design.cost.wirelength_um:,.0f} um, "
            f"area {design.cost.area_um2:,.0f} um2, "
            f"delay {design.cost.average_delay_ns:.2f} ns, "
            f"peak congestion {congestion.max():.0f} wires/bin, "
            f"center/overall congestion {center_ratio:.2f}\n"
            + _ascii_heatmap(congestion)
        )
        if name == "FullCro":
            fullcro_center = center_ratio
        else:
            autoncs_center = center_ratio
        # Emit the publication-style SVG panels next to the numeric data.
        RESULTS_DIR.mkdir(exist_ok=True)
        kinds = [cell.kind.value for cell in design.mapping.netlist.cells]
        save_svg(
            layout_to_svg(design.placement, kinds, title=f"{name} layout (Fig. 10)"),
            RESULTS_DIR / f"fig10_{name.lower()}_layout.svg",
        )
        save_svg(
            congestion_to_svg(congestion, title=f"{name} congestion (Fig. 10)"),
            RESULTS_DIR / f"fig10_{name.lower()}_congestion.svg",
        )
    write_result("fig10_layout_congestion", "\n\n".join(blocks))
    _ = autoncs_center  # reported via the text block

    # AutoNCS must beat the baseline on area and delay; wirelength wins on
    # average over the testbenches (seed variance can flip one instance).
    assert autoncs.cost.wirelength_um < fullcro.cost.wirelength_um * 1.15
    assert autoncs.cost.area_um2 < fullcro.cost.area_um2
    assert autoncs.cost.average_delay_ns < fullcro.cost.average_delay_ns
    # both maps are congested in the center relative to the rim; the paper's
    # qualitative claim is heavy central congestion for FullCro
    assert fullcro_center > 1.0
