"""Figure 4 — GCP vs the traversing algorithm.

Paper reference: both methods cap the cluster size at 64 and give "very
close" clustering results; GCP takes 106 ms vs 190 ms for traversing
(about 1.8× faster) on the 400×400 network.
"""

from benchmarks.conftest import bench_seed, write_result
from repro.experiments.figures import figure4


def test_fig4_gcp_vs_traversing(benchmark, cache):
    network = cache.network(2)

    result = benchmark.pedantic(
        lambda: figure4(network, max_size=64, rng=bench_seed()),
        rounds=1,
        iterations=1,
    )

    lines = [
        f"size limit: {result.max_size}",
        f"GCP:        max cluster {result.gcp_max_cluster:3d}, "
        f"k={result.gcp_clusters:3d}, outliers {result.gcp_outlier_ratio:.1%}, "
        f"runtime {result.gcp_runtime_ms:8.1f} ms   (paper: 106 ms)",
        f"traversing: max cluster {result.traversing_max_cluster:3d}, "
        f"k={result.traversing_clusters:3d}, outliers {result.traversing_outlier_ratio:.1%}, "
        f"runtime {result.traversing_runtime_ms:8.1f} ms   (paper: 190 ms)",
        f"GCP speedup: {result.speedup:.2f}x   (paper: ~1.8x)",
    ]
    write_result("fig4_gcp_vs_traversing", "\n".join(lines))

    # both respect the crossbar size cap
    assert result.gcp_max_cluster <= 64
    assert result.traversing_max_cluster <= 64
    # results are close (same ballpark of clustered connections)
    assert abs(result.gcp_outlier_ratio - result.traversing_outlier_ratio) < 0.25
