"""Figure 9 — ISC analysis of testbench 3 (M=30, N=500).

Paper reference: "after 14 iterations, 95 % of connections are clustered";
normalized utilization and CP keep decreasing with slight rises from the
partial selection strategy; most crossbar sizes lie between 32 and 64; the
average total fanin+fanout is only 80 % of the baseline design's.
"""

from benchmarks._isc_panels import run_panels


def test_fig9_tb3_panels(benchmark, cache):
    run_panels(
        benchmark,
        cache,
        index=3,
        paper_notes=(
            "paper: 95% clustered after 14 iterations; sizes mostly 32-64; "
            "avg fanin+fanout 80% of baseline"
        ),
    )
