"""Reliability (extension) — Monte-Carlo yield vs defect rate, repair on/off.

Not a paper table: the paper assumes ideal devices, but memristor crossbars
ship with stuck-at cells and broken nano-wire lines.  This bench maps a
scaled-down testbench 1, sweeps stuck-off defect rates, and measures the
functional yield (fraction of sampled chips whose hardware recall still
recognizes >= 90 % of the stored patterns) before and after the
fault-aware repair pass of :mod:`repro.reliability`.
"""

from benchmarks.conftest import bench_fast, bench_jobs, bench_seed, write_result
from repro.experiments.reliability import run_reliability_experiment

# The sparse Hopfield nets tolerate a surprising amount of damage (graceful
# degradation is the whole point of associative memories), so the sweep has
# to reach deep into the defect range before raw chips start failing.
DEFECT_RATES = (0.0, 0.2, 0.3, 0.4)


def test_yield_repair_beats_unrepaired(benchmark):
    fast = bench_fast()

    def compute():
        return run_reliability_experiment(
            testbench=1,
            dimension=100 if fast else 120,
            defect_rates=DEFECT_RATES,
            samples=3 if fast else 6,
            spare_instances=2,
            rng=bench_seed(),
            n_jobs=bench_jobs(),
        )

    result = benchmark.pedantic(compute, rounds=1, iterations=1)
    write_result("reliability_tb1", result.format())

    points = result.curve.points
    # a defect-free chip always works, repaired or not
    assert points[0].functional_yield_unrepaired == 1.0
    assert points[0].functional_yield_repaired == 1.0
    # repair never hurts, and recovers real yield at some nonzero rate
    assert all(
        p.functional_yield_repaired >= p.functional_yield_unrepaired for p in points
    )
    if not fast:  # with 3 samples the gain can land on an all-pass rate
        assert any(
            p.functional_yield_repaired > p.functional_yield_unrepaired
            for p in points
            if p.rates.cell_stuck_off > 0
        )
