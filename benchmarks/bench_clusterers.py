"""Clustering-engine ablation (extension): GCP vs greedy modularity in ISC.

Swaps ISC's inner clusterer (Algorithm 3 line 3) between the paper's
spectral GCP and a greedy-modularity baseline on testbench 1.
"""

from benchmarks.conftest import bench_seed, write_result
from repro.clustering import iterative_spectral_clustering
from repro.clustering.modularity import modularity_clustering
from repro.mapping import fullcro_utilization


def test_clusterer_comparison(benchmark, cache):
    network = cache.network(1)
    threshold = fullcro_utilization(network, 64)

    def compute():
        spectral = cache.isc(1)
        modular = iterative_spectral_clustering(
            network,
            utilization_threshold=threshold,
            clusterer=modularity_clustering,
            rng=bench_seed(),
        )
        return spectral, modular

    spectral, modular = benchmark.pedantic(compute, rounds=1, iterations=1)

    lines = []
    for name, isc in (("spectral GCP (paper)", spectral), ("greedy modularity", modular)):
        lines.append(
            f"{name}: {isc.iterations} iterations, "
            f"{len(isc.crossbars)} crossbars, "
            f"outliers {isc.outlier_ratio:.1%}, "
            f"avg utilization {isc.average_utilization:.3f}"
        )
    write_result("clusterer_comparison", "\n".join(lines))

    spectral.validate()
    modular.validate()
    assert modular.outlier_ratio <= 1.0
