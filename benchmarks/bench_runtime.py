"""Runtime engine — sweep throughput vs worker count, cold vs warm cache.

Not a paper table: this bench characterizes the :mod:`repro.runtime`
execution engine itself.  One (size × density) compare grid runs

* cold at ``n_jobs`` ∈ {1, 2, 4} (fresh cache each time), and
* warm once more (same cache as the last cold run),

and the bench asserts the engine's two contracts — bitwise-identical
results for every worker count, and a 100 %-hit, zero-execution warm
rerun — while *recording* the measured speedups without asserting them
(wall-clock ratios depend on the machine's core count; a single-core
runner legitimately shows ~1×).
"""

from __future__ import annotations

from benchmarks.conftest import bench_config, bench_fast, bench_seed, write_result
from repro.observability import recording
from repro.runtime import ArtifactCache, EventLog, Runner, SweepSpec

WORKER_COUNTS = (1, 2, 4)


def _spec() -> SweepSpec:
    if bench_fast():
        sizes, densities = (40, 56, 72), (0.05,)
    else:
        sizes, densities = (80, 120, 160), (0.04, 0.06, 0.08)
    return SweepSpec(
        sizes=sizes,
        densities=densities,
        seed=bench_seed(),
        kind="compare",
        config=bench_config(),
        name="bench-runtime",
    )


def _reduction_rows(result):
    return [
        (
            row["size"],
            row["density"],
            row["wirelength_reduction"],
            row["area_reduction"],
            row["delay_reduction"],
        )
        for row in result.cell_rows()
    ]


def test_sweep_throughput_and_cache(benchmark, tmp_path):
    spec = _spec()
    runs = {}
    reference_rows = None

    def sweep_all():
        for n_jobs in WORKER_COUNTS:
            cache = ArtifactCache(tmp_path / f"cache-j{n_jobs}")
            events = EventLog()
            result = Runner(n_jobs=n_jobs, cache=cache, events=events).run_sweep(spec)
            finished = events.of_kind("sweep_finished")[0]
            runs[n_jobs] = (result, float(finished["seconds"]))
        return runs

    benchmark.pedantic(sweep_all, rounds=1, iterations=1)

    # Contract 1: worker count never changes the numbers.
    for n_jobs, (result, _seconds) in runs.items():
        rows = _reduction_rows(result)
        if reference_rows is None:
            reference_rows = rows
        assert rows == reference_rows, f"n_jobs={n_jobs} diverged from n_jobs=1"
        assert result.executed == len(spec)
        assert result.cache_hits == 0

    # Contract 2: a warm rerun is pure cache — zero executions, all hits.
    # This rerun executes under a live recorder, so the engine's own
    # counters (cache hits, cached jobs) cross-check the sweep result.
    warm_cache = ArtifactCache(tmp_path / f"cache-j{WORKER_COUNTS[-1]}")
    warm_events = EventLog()
    with recording() as recorder:
        warm = Runner(n_jobs=1, cache=warm_cache, events=warm_events).run_sweep(spec)
    warm_seconds = float(warm_events.of_kind("sweep_finished")[0]["seconds"])
    assert warm.cache_hits == len(spec)
    assert warm.executed == 0
    assert _reduction_rows(warm) == reference_rows
    warm_metrics = recorder.snapshot()
    assert warm_metrics.get("cache.hits") == len(spec)
    assert warm_metrics.get("runner.jobs_cached") == len(spec)
    assert warm_metrics.get("runner.jobs_executed") is None

    base_seconds = runs[1][1]
    lines = [
        f"sweep grid: {len(spec)} cells "
        f"(sizes={spec.sizes}, densities={spec.densities}, seed={spec.seed})",
        f"{'n_jobs':>7} {'seconds':>9} {'speedup':>8}",
    ]
    for n_jobs in WORKER_COUNTS:
        seconds = runs[n_jobs][1]
        speedup = base_seconds / seconds if seconds > 0 else float("inf")
        lines.append(f"{n_jobs:>7d} {seconds:>9.2f} {speedup:>7.2f}x")
    warm_speedup = base_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    lines.append(
        f"{'warm':>7} {warm_seconds:>9.2f} {warm_speedup:>7.2f}x "
        f"({warm.cache_hits}/{len(spec)} cache hits, 0 executed)"
    )
    lines.append(
        "warm-run metrics: "
        f"cache.hits={warm_metrics.get('cache.hits')}, "
        f"cache.hit_rate={warm_metrics.get('cache.hit_rate'):.2f}, "
        f"runner.jobs_cached={warm_metrics.get('runner.jobs_cached')}"
    )
    write_result("runtime_sweep", "\n".join(lines))
