"""Table 1 — the physical design cost evaluation (the paper's headline).

Paper reference values (measured numbers differ — our substrate is a
Python re-implementation with calibrated technology parameters — but the
*shape* must hold: AutoNCS wins on wirelength, area and delay on every
testbench; FullCro's delay is constant at 1.95 ns; reductions average
roughly 48 % / 32 % / 47 %):

====  ========  ================  ===========  =========
TB    design    wirelength (µm)   area (µm²)   delay (ns)
====  ========  ================  ===========  =========
1     AutoNCS   131,934.3         7,608.80     1.05
1     FullCro   233,080.0         9,667.20     1.95
2     AutoNCS   380,549.6         14,211.54    1.05
2     FullCro   676,416.0         20,168.60    1.95
3     AutoNCS   575,760.9         20,943.93    0.99
3     FullCro   1,316,590.0       38,136.23    1.95
====  ========  ================  ===========  =========
"""

import pytest

from benchmarks.conftest import bench_fast, write_result
from repro.core.report import ComparisonReport, average_reductions
from repro.experiments.table1 import PAPER_AVERAGE_REDUCTIONS, PAPER_TABLE1


@pytest.mark.parametrize("index", [1, 2, 3])
def test_table1_testbench(benchmark, cache, index):
    def compute():
        return ComparisonReport(
            label=f"TB{index}",
            autoncs=cache.design(index, "autoncs"),
            fullcro=cache.design(index, "fullcro"),
        )

    report = benchmark.pedantic(compute, rounds=1, iterations=1)

    paper = PAPER_TABLE1[index]
    lines = [
        report.format_table(),
        "",
        "paper reference:",
        f"  AutoNCS  L={paper['AutoNCS']['wirelength_um']:,.1f}  "
        f"A={paper['AutoNCS']['area_um2']:,.2f}  T={paper['AutoNCS']['delay_ns']:.2f}",
        f"  FullCro  L={paper['FullCro']['wirelength_um']:,.1f}  "
        f"A={paper['FullCro']['area_um2']:,.2f}  T={paper['FullCro']['delay_ns']:.2f}",
        f"  Reduc.   L={paper['reduction']['wirelength_um']:.2f}%  "
        f"A={paper['reduction']['area_um2']:.2f}%  T={paper['reduction']['delay_ns']:.2f}%",
    ]
    write_result(f"table1_tb{index}", "\n".join(lines))

    # In the CI smoke mode (REPRO_BENCH_FAST) the testbenches are scaled
    # down and the flow runs at reduced effort, so the paper-scale shape
    # does not hold — only check that the flows produced real designs.
    if bench_fast():
        assert report.autoncs.cost.wirelength_um > 0
        assert report.fullcro.cost.wirelength_um > 0
        assert report.autoncs.cost.average_delay_ns > 0
        assert report.fullcro.cost.average_delay_ns > 0
        return

    # shape: AutoNCS wins on area and delay on every testbench; wirelength
    # wins on average (asserted in test_table1_averages) but a single seed
    # can flip the sign on one bench — allow a small negative excursion.
    assert report.wirelength_reduction > -15
    assert report.area_reduction > 0
    assert report.delay_reduction > 0
    # FullCro delay is pinned by the 64x64 crossbar delay (paper: 1.95 ns)
    assert report.fullcro.cost.average_delay_ns == pytest.approx(1.95, abs=0.15)


def test_table1_averages(benchmark, cache):
    def compute():
        return [
            ComparisonReport(
                label=f"TB{index}",
                autoncs=cache.design(index, "autoncs"),
                fullcro=cache.design(index, "fullcro"),
            )
            for index in (1, 2, 3)
        ]

    reports = benchmark.pedantic(compute, rounds=1, iterations=1)
    averages = average_reductions(reports)
    lines = [
        "average reductions over the three testbenches:",
        f"  measured: wirelength {averages['wirelength']:.2f}%, "
        f"area {averages['area']:.2f}%, delay {averages['delay']:.2f}%",
        f"  paper:    wirelength {PAPER_AVERAGE_REDUCTIONS['wirelength']:.2f}%, "
        f"area {PAPER_AVERAGE_REDUCTIONS['area']:.2f}%, "
        f"delay {PAPER_AVERAGE_REDUCTIONS['delay']:.2f}%",
    ]
    write_result("table1_averages", "\n".join(lines))

    if bench_fast():
        assert all(averages[metric] < 100 for metric in averages)
        return
    assert averages["wirelength"] > 0
    assert averages["area"] > 10
    assert averages["delay"] > 10
