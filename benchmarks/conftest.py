"""Shared benchmark fixtures: cached testbenches and physical designs.

The benchmark harness regenerates every table and figure of the paper.
Heavy artefacts (testbench networks, ISC runs, placed-and-routed designs)
are computed once per session and shared across benchmark modules, so the
whole suite stays in the minutes range.

Results are printed *and* written to ``benchmarks/results/`` so that
captured pytest output never hides them.

Environment knobs
-----------------
``REPRO_BENCH_SEED``
    Seed for every benchmark (default 42).
"""

from __future__ import annotations

import os
import pathlib
from typing import Dict

import pytest

from repro.clustering import iterative_spectral_clustering
from repro.core.autoncs import AutoNCS
from repro.experiments.testbenches import TESTBENCHES, build_testbench
from repro.mapping import fullcro_utilization

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_seed() -> int:
    """The session seed (REPRO_BENCH_SEED, default 42)."""
    return int(os.environ.get("REPRO_BENCH_SEED", "42"))


def write_result(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n===== {name} =====")
    print(text)


class PipelineCache:
    """Session-wide cache of testbenches, ISC runs and physical designs."""

    def __init__(self) -> None:
        self.seed = bench_seed()
        self._instances: Dict[int, object] = {}
        self._isc: Dict[int, object] = {}
        self._designs: Dict[tuple, object] = {}
        self.flow = AutoNCS()

    def instance(self, index: int):
        """The generated testbench (patterns + Hopfield + network)."""
        if index not in self._instances:
            self._instances[index] = build_testbench(index, rng=self.seed)
        return self._instances[index]

    def network(self, index: int):
        """The testbench connection matrix."""
        return self.instance(index).network

    def isc(self, index: int):
        """The ISC run for a testbench (threshold = FullCro utilization)."""
        if index not in self._isc:
            network = self.network(index)
            threshold = fullcro_utilization(network, 64)
            self._isc[index] = iterative_spectral_clustering(
                network, utilization_threshold=threshold, rng=self.seed
            )
        return self._isc[index]

    def design(self, index: int, kind: str):
        """A placed-and-routed design; ``kind`` is 'autoncs' or 'fullcro'."""
        key = (index, kind)
        if key not in self._designs:
            network = self.network(index)
            if kind == "autoncs":
                self._designs[key] = self.flow.run(network, rng=self.seed).design
            elif kind == "fullcro":
                self._designs[key] = self.flow.run_baseline(network, rng=self.seed)
            else:  # pragma: no cover - internal misuse
                raise ValueError(f"unknown design kind {kind!r}")
        return self._designs[key]


@pytest.fixture(scope="session")
def cache() -> PipelineCache:
    """The shared pipeline cache."""
    return PipelineCache()


@pytest.fixture(scope="session")
def testbenches():
    """The three paper testbench descriptors."""
    return TESTBENCHES
