"""Shared benchmark fixtures: cached testbenches and physical designs.

The benchmark harness regenerates every table and figure of the paper.
Heavy artefacts (testbench networks, ISC runs, placed-and-routed designs)
are computed once per session and shared across benchmark modules, so the
whole suite stays in the minutes range.  Designs run as
:mod:`repro.runtime` jobs: both flows of a testbench execute in one
batch, over ``REPRO_BENCH_JOBS`` worker processes, with the same numbers
as the historical serial calls (each flow still sees
``default_rng(REPRO_BENCH_SEED)``).

Results are printed *and* written to ``benchmarks/results/`` so that
captured pytest output never hides them.

Environment knobs
-----------------
``REPRO_BENCH_SEED``
    Seed for every benchmark (default 42).
``REPRO_BENCH_JOBS``
    Worker processes for runtime-backed benchmarks (default 1).
``REPRO_BENCH_FAST``
    Any non-empty value switches to reduced-effort configs and scaled
    testbenches — a CI smoke mode that checks the benches run end to
    end, not the paper-scale numbers (scale-dependent shape assertions
    are relaxed accordingly).
"""

from __future__ import annotations

import os
import pathlib
from typing import Dict

import pytest

from repro.clustering import iterative_spectral_clustering
from repro.core.config import AutoNcsConfig, fast_config
from repro.experiments.testbenches import TESTBENCHES, build_testbench, scaled_testbench
from repro.mapping import fullcro_utilization

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Scaled testbench size used by the fast (CI smoke) mode.
FAST_DIMENSION = 80


def bench_seed() -> int:
    """The session seed (REPRO_BENCH_SEED, default 42)."""
    return int(os.environ.get("REPRO_BENCH_SEED", "42"))


def bench_jobs() -> int:
    """Worker processes for runtime-backed benchmarks (REPRO_BENCH_JOBS)."""
    return max(1, int(os.environ.get("REPRO_BENCH_JOBS", "1")))


def bench_fast() -> bool:
    """True in the reduced-effort CI smoke mode (REPRO_BENCH_FAST)."""
    return bool(os.environ.get("REPRO_BENCH_FAST", ""))


def bench_config() -> AutoNcsConfig:
    """The flow config benches run with (fast in smoke mode)."""
    return fast_config() if bench_fast() else AutoNcsConfig()


def write_result(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n===== {name} =====")
    print(text)


class PipelineCache:
    """Session-wide cache of testbenches, ISC runs and physical designs."""

    def __init__(self) -> None:
        self.seed = bench_seed()
        self.n_jobs = bench_jobs()
        self.fast = bench_fast()
        self.config = bench_config()
        self._instances: Dict[int, object] = {}
        self._isc: Dict[int, object] = {}
        self._designs: Dict[tuple, object] = {}

    def _testbench(self, index: int):
        if self.fast:
            return scaled_testbench(index, FAST_DIMENSION)
        return index

    def instance(self, index: int):
        """The generated testbench (patterns + Hopfield + network)."""
        if index not in self._instances:
            self._instances[index] = build_testbench(
                self._testbench(index), rng=self.seed
            )
        return self._instances[index]

    def network(self, index: int):
        """The testbench connection matrix."""
        return self.instance(index).network

    def isc(self, index: int):
        """The ISC run for a testbench (threshold = FullCro utilization)."""
        if index not in self._isc:
            network = self.network(index)
            threshold = fullcro_utilization(network, 64)
            self._isc[index] = iterative_spectral_clustering(
                network, utilization_threshold=threshold, rng=self.seed
            )
        return self._isc[index]

    def design(self, index: int, kind: str):
        """A placed-and-routed design; ``kind`` is 'autoncs' or 'fullcro'.

        Both flows of a testbench run in one runtime batch (so with
        ``REPRO_BENCH_JOBS >= 2`` they execute concurrently); each job is
        seeded with the session seed, matching the historical
        ``flow.run(network, rng=seed)`` calls exactly.
        """
        if kind not in ("autoncs", "fullcro"):
            raise ValueError(f"unknown design kind {kind!r}")
        key = (index, kind)
        if key not in self._designs:
            from repro.runtime import Job, Runner

            network = self.network(index)
            jobs = [
                Job(
                    kind=job_kind,
                    label=f"tb{index} {job_kind}",
                    payload={"network": network, "config": self.config},
                    seed=self.seed,
                )
                for job_kind in ("autoncs", "fullcro")
            ]
            results = Runner(n_jobs=self.n_jobs).run(jobs)
            self._designs[(index, "autoncs")] = results[0].value.design
            self._designs[(index, "fullcro")] = results[1].value
        return self._designs[key]


@pytest.fixture(scope="session")
def cache() -> PipelineCache:
    """The shared pipeline cache."""
    return PipelineCache()


@pytest.fixture(scope="session")
def testbenches():
    """The three paper testbench descriptors."""
    return TESTBENCHES
