"""Shared driver for the Fig. 7/8/9 ISC analysis panels."""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import PipelineCache, bench_seed, write_result
from repro.experiments.figures import isc_analysis


def run_panels(benchmark, cache: PipelineCache, index: int, paper_notes: str) -> None:
    """Compute and report the four analysis panels for one testbench."""
    instance = cache.instance(index)

    result = benchmark.pedantic(
        lambda: isc_analysis(
            instance.network, label=instance.testbench.label, rng=bench_seed()
        ),
        rounds=1,
        iterations=1,
    )

    outliers = " ".join(f"{v:.2f}" for v in result.outlier_ratio_series)
    norm_util = " ".join(f"{v:.2f}" for v in result.normalized_utilization_series)
    cps = " ".join(f"{v:.2f}" for v in result.average_preference_series)
    histogram = ", ".join(f"{s}x{s}:{c}" for s, c in result.crossbar_size_histogram.items())
    lines = [
        f"testbench: {result.testbench_label}",
        f"baseline (FullCro) utilization: {result.baseline_utilization:.4f}",
        f"(a) outlier ratio per iteration : {outliers}",
        f"    final outlier ratio: {result.final_outlier_ratio:.1%} "
        f"({result.clustered_ratio:.1%} clustered)",
        f"(b) normalized utilization      : {norm_util}",
        f"    average CP per iteration    : {cps}",
        f"(c) crossbar size histogram     : {histogram}",
        f"(d) avg fanin+fanout vs baseline: {result.average_sum_vs_baseline:.2f} "
        f"(paper: ~0.80)",
        paper_notes,
    ]
    write_result(f"fig{6 + index}_tb{index}_isc_analysis", "\n".join(lines))

    # shape assertions shared by all three testbenches
    assert result.final_outlier_ratio < 0.35
    assert result.average_sum_vs_baseline < 1.1
    # normalized utilization ends near/below 1 (the stop condition)
    assert result.normalized_utilization_series[-1] < 1.5
    # panel (d) series are per-neuron and sorted
    assert result.fanin_fanout_sum.shape[0] == instance.network.size
    assert np.all(np.diff(result.fanin_fanout_sum) >= -1e-12)
