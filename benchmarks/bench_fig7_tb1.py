"""Figure 7 — ISC analysis of testbench 1 (M=15, N=300).

Paper reference: the outlier ratio drops quickly over the iterations,
normalized utilization and CP decrease overall with occasional rises
(partial selection), most crossbars are mid-to-large, and the average
total fanin+fanout lands near 80 % of the baseline.
"""

from benchmarks._isc_panels import run_panels


def test_fig7_tb1_panels(benchmark, cache):
    run_panels(
        benchmark,
        cache,
        index=1,
        paper_notes="paper: outliers drop fast; similar trends as Fig. 9 (testbench 3)",
    )
