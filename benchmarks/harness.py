#!/usr/bin/env python
"""Standalone entry for the perf harness (same surface as ``repro bench``).

Usage::

    PYTHONPATH=src python benchmarks/harness.py --fast
    PYTHONPATH=src python benchmarks/harness.py --fast --check
    PYTHONPATH=src python benchmarks/harness.py --update-baseline

See :mod:`repro.bench` for the suites, the JSON schema and the
regression policy.
"""

import sys

from repro.bench import main

if __name__ == "__main__":
    sys.exit(main())
