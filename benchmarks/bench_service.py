"""Mapping service — HTTP load test: latency, throughput, dedup mix.

Spins an in-process :class:`~repro.service.http.ServiceServer` and
drives the fixed serving mix from :mod:`repro.service.loadtest`: many
client threads submitting a small set of unique jobs, so the dedup /
cache layer should execute each unique flow exactly once and serve the
rest from the in-flight coalescer or the artifact cache.

The bench asserts the serving *contracts* — zero errors, exactly-once
execution per unique job, a ≥90 % hit mix — while *recording* latency
percentiles and throughput without asserting them (both are machine
numbers; the committed trajectory lives in ``BENCH_service.json`` via
``python -m repro bench --suites service``).

Fast mode shrinks the request count (the contracts are scale-free),
not the unique-job set.
"""

from __future__ import annotations

from benchmarks.conftest import bench_fast, bench_seed, write_result
from repro.service import ServiceConfig, ServiceServer
from repro.service.loadtest import default_payloads, run_load

UNIQUE_JOBS = 8
CLIENTS = 16


def _request_count() -> int:
    return 240 if bench_fast() else 1200


def test_service_load(benchmark, tmp_path):
    requests = _request_count()
    config = ServiceConfig(
        workers=4,
        max_queue=max(64, UNIQUE_JOBS * 4),
        cache_dir=tmp_path / "cache",
    )
    outcome = {}

    def load():
        with ServiceServer(config) as server:
            outcome["report"] = run_load(
                server.url,
                requests=requests,
                clients=CLIENTS,
                payloads=default_payloads(UNIQUE_JOBS, seed=bench_seed()),
            )
            outcome["executed"] = server.service.metrics.counter("jobs_executed")
            outcome["failed"] = server.service.metrics.counter("failed")
        return outcome

    benchmark.pedantic(load, rounds=1, iterations=1)
    report = outcome["report"]

    # Contract 1: the mix is served clean — no errors, no failed jobs.
    assert report.errors == 0
    assert outcome["failed"] == 0
    assert len(report.latencies_seconds) == requests

    # Contract 2: dedup executes each unique flow exactly once; the
    # remaining requests are hits (coalesced in flight or cache-served),
    # which at this mix is a >= 90 % hit ratio.
    assert outcome["executed"] == UNIQUE_JOBS
    hit_ratio = (requests - outcome["executed"]) / requests
    assert hit_ratio >= 0.90

    write_result(
        "service_load",
        "\n".join(
            [
                f"mix: {requests} requests over {CLIENTS} client thread(s), "
                f"{UNIQUE_JOBS} unique job(s)",
                report.format(),
                f"hit ratio (exactly-once): {hit_ratio:.1%}",
            ]
        ),
    )
