"""Figure 3 — MSC clustering of a 400×400 network.

Paper reference: one MSC pass on the 400-neuron network groups the
connections into clusters, but "the outliers in Figure 3(b) still count
for 57 % of total connections".
"""

from benchmarks.conftest import bench_seed, write_result
from repro.experiments.figures import figure3


def test_fig3_msc_on_400_network(benchmark, cache):
    network = cache.network(2)  # testbench 2 is the paper's 400x400 net

    result = benchmark.pedantic(
        lambda: figure3(network, rng=bench_seed()), rounds=1, iterations=1
    )

    lines = [
        f"network: n={result.n}, connections={result.connections}",
        f"MSC with k = ceil(n/64) = {result.k}",
        f"cluster sizes: {sorted(result.cluster_sizes, reverse=True)}",
        f"outlier ratio after one MSC: {result.outlier_ratio:.1%}   (paper: 57 %)",
    ]
    write_result("fig3_msc", "\n".join(lines))

    assert 0.0 <= result.outlier_ratio <= 1.0
    # one MSC pass leaves a substantial outlier fraction (the paper's
    # motivation for ISC)
    assert result.outlier_ratio > 0.2
