"""Figure 6 — ISC iterations with partial selection.

Paper reference: on the 400×400 network, "after the 11th iteration, most
of the connections are clustered, leaving an almost empty remaining
network, i.e., < 5 % outlier ratio"; the top 25 % CP clusters are removed
per iteration.
"""

from benchmarks.conftest import write_result


def test_fig6_isc_iterations(benchmark, cache):
    isc = benchmark.pedantic(lambda: cache.isc(2), rounds=1, iterations=1)

    series = " ".join(
        f"{record.outlier_ratio_after:.2f}" for record in isc.records
    )
    lines = [
        f"iterations: {isc.iterations}   (paper: 11)",
        f"outlier ratio per iteration: {series}",
        f"final outlier ratio: {isc.outlier_ratio:.1%}   (paper: < 5 %)",
        f"crossbars placed: {len(isc.crossbars)}",
    ]
    write_result("fig6_isc_iterations", "\n".join(lines))

    # ISC makes strong progress over the iterations
    assert isc.outlier_ratio < 0.3
    assert 3 <= isc.iterations <= 50
    # outlier series decreases monotonically
    ratios = [record.outlier_ratio_after for record in isc.records]
    assert all(b <= a + 1e-12 for a, b in zip(ratios, ratios[1:]))
