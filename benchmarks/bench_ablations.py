"""Ablations (extension) — the design choices DESIGN.md calls out.

Not part of the paper's evaluation: these benches quantify the
contribution of (1) the partial selection strategy, (2) the CP = m²/s³
preference definition, and (3) the crossbar library range, all on
testbench 2.
"""

from benchmarks.conftest import bench_seed, write_result
from repro.experiments.ablations import (
    ablate_library_range,
    ablate_partial_selection,
    ablate_preference_definition,
    format_ablation,
)


def test_ablation_partial_selection(benchmark, cache):
    network = cache.network(2)
    points = benchmark.pedantic(
        lambda: ablate_partial_selection(network, rng=bench_seed()),
        rounds=1,
        iterations=1,
    )
    write_result("ablation_partial_selection", format_ablation(points))
    paper = next(p for p in points if "paper" in p.label)
    greedy = next(p for p in points if "no partial selection" in p.label)
    # partial selection buys higher average crossbar utilization
    assert paper.average_utilization >= greedy.average_utilization * 0.95


def test_ablation_preference_definition(benchmark, cache):
    network = cache.network(2)
    points = benchmark.pedantic(
        lambda: ablate_preference_definition(network, rng=bench_seed()),
        rounds=1,
        iterations=1,
    )
    write_result("ablation_preference_definition", format_ablation(points))
    assert all(p.crossbars > 0 for p in points)


def test_ablation_library_range(benchmark, cache):
    network = cache.network(2)
    points = benchmark.pedantic(
        lambda: ablate_library_range(network, rng=bench_seed()),
        rounds=1,
        iterations=1,
    )
    write_result("ablation_library_range", format_ablation(points))
    paper = next(p for p in points if "paper" in p.label)
    only64 = next(p for p in points if p.label == "only 64")
    # the graded library wastes fewer memristors than the single-size one
    assert paper.average_utilization >= only64.average_utilization
