"""Placement-engine ablation (extension): Algorithm 4 vs simulated annealing.

Compares the customized analytical placer against a classic annealer on
the testbench-1 AutoNCS netlist: final HPWL, area, and runtime.
"""

import time

from benchmarks.conftest import bench_seed, write_result
from repro.mapping import autoncs_mapping
from repro.physical.placement.annealing import AnnealingConfig, anneal_place
from repro.physical.placement.placer import place


def test_placer_comparison(benchmark, cache):
    isc = cache.isc(1)
    mapping = autoncs_mapping(isc)
    netlist = mapping.netlist
    sources, targets, _ = netlist.wire_endpoints()

    def compute():
        t0 = time.perf_counter()
        analytic = place(netlist, rng=bench_seed())
        analytic_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        annealed = anneal_place(
            netlist,
            config=AnnealingConfig(moves_per_temperature=300, temperatures=25),
            rng=bench_seed(),
        )
        annealed_s = time.perf_counter() - t0
        return analytic, analytic_s, annealed, annealed_s

    analytic, analytic_s, annealed, annealed_s = benchmark.pedantic(
        compute, rounds=1, iterations=1
    )

    analytic_hpwl = analytic.hpwl(sources, targets)
    annealed_hpwl = annealed.hpwl(sources, targets)
    lines = [
        f"netlist: {netlist.num_cells} cells, {netlist.num_wires} wires",
        f"analytical (Alg. 4): HPWL {analytic_hpwl:,.0f} um, "
        f"area {analytic.area:,.0f} um2, {analytic_s:.1f} s",
        f"simulated annealing: HPWL {annealed_hpwl:,.0f} um, "
        f"area {annealed.area:,.0f} um2, {annealed_s:.1f} s",
        f"analytic/annealing HPWL ratio: {analytic_hpwl / annealed_hpwl:.2f}",
    ]
    write_result("placer_comparison", "\n".join(lines))

    # both engines produce legal layouts
    assert analytic.overlap_ratio() < 0.02
    assert annealed.overlap_ratio() < 0.05
    # the customized analytical placer must not lose to the generic annealer
    assert analytic_hpwl <= annealed_hpwl * 1.1
