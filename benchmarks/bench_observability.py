"""Observability layer — null-recorder overhead and instrumented-flow cost.

Not a paper table: this bench characterizes the
:mod:`repro.observability` layer itself, checking the overhead contract
from DESIGN.md:

* with no recorder installed (the default ``NULL_RECORDER``), the
  instrumentation left in the hot paths must be effectively free — the
  bench measures the per-call cost of the no-op recorder and the
  wall-clock of a fully instrumented flow run, and records both;
* with a live recorder, the same flow must produce the headline
  counters and flow-stage spans; the enabled-vs-disabled wall-clock
  ratio is recorded, with only a deliberately loose sanity bound
  asserted (wall-clock ratios are machine- and load-dependent).
"""

from __future__ import annotations

import time

from benchmarks.conftest import bench_config, bench_fast, bench_seed, write_result
from repro.core import AutoNCS
from repro.networks import random_sparse_network
from repro.observability import NULL_RECORDER, get_recorder, recording

#: Counters the instrumented flow must always produce (the QoR headline).
HEADLINE_COUNTERS = (
    "flow.runs",
    "isc.runs",
    "placement.wa_evals",
    "routing.heap_pushes",
    "routing.ripup_retries",
    "routing.wires_routed",
)

FLOW_STAGES = ("flow.cluster", "flow.map", "flow.place", "flow.route", "flow.evaluate")

NULL_CALLS = 200_000


def _network():
    size = 48 if bench_fast() else 96
    return random_sparse_network(size, 0.07, rng=bench_seed(), name="bench-obs")


def _flow_seconds(network, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        flow = AutoNCS(bench_config())
        started = time.perf_counter()
        flow.run(network, rng=bench_seed())
        best = min(best, time.perf_counter() - started)
    return best


def test_null_recorder_call_cost(benchmark):
    """Per-call cost of disabled instrumentation (count + span)."""
    assert get_recorder() is NULL_RECORDER

    def hot_loop():
        recorder = get_recorder()
        for _ in range(NULL_CALLS):
            recorder.count("bench.counter")
            with recorder.span("bench.span"):
                pass
        return recorder

    recorder = benchmark.pedantic(hot_loop, rounds=3, iterations=1)
    # The null recorder must have recorded nothing at all.
    assert recorder.tracer.spans == []
    assert recorder.snapshot().empty
    mean_seconds = benchmark.stats.stats.mean
    ns_per_call = mean_seconds / (2 * NULL_CALLS) * 1e9
    write_result(
        "observability_null_cost",
        f"{2 * NULL_CALLS:,} disabled count+span calls: "
        f"{mean_seconds:.4f} s ({ns_per_call:.0f} ns/call)",
    )


def test_instrumented_flow_overhead(benchmark):
    """Enabled-vs-disabled wall clock of one instrumented flow run."""
    network = _network()
    repeats = 2 if bench_fast() else 3
    timings = {}

    def run_both():
        assert get_recorder() is NULL_RECORDER
        timings["disabled"] = _flow_seconds(network, repeats)
        with recording() as recorder:
            timings["enabled"] = _flow_seconds(network, repeats)
        timings["recorder"] = recorder
        return timings

    benchmark.pedantic(run_both, rounds=1, iterations=1)
    recorder = timings["recorder"]

    # The enabled run must produce the headline counters and stage spans.
    snapshot = recorder.snapshot()
    for name in HEADLINE_COUNTERS:
        assert snapshot.get(name) is not None, f"missing counter {name}"
    span_names = {span.name for span in recorder.tracer.spans}
    for stage in FLOW_STAGES:
        assert stage in span_names, f"missing span {stage}"

    disabled, enabled = timings["disabled"], timings["enabled"]
    ratio = enabled / disabled if disabled > 0 else float("inf")
    # Loose sanity bound only: recording a full flow must not blow up
    # the wall clock (the real <5 % disabled-overhead contract is
    # checked against bench_runtime's recorded throughput history).
    assert ratio < 3.0, f"enabled instrumentation ratio {ratio:.2f}x"

    lines = [
        f"flow: {network} (best of {repeats})",
        f"{'mode':>10} {'seconds':>9}",
        f"{'disabled':>10} {disabled:>9.3f}",
        f"{'enabled':>10} {enabled:>9.3f}   ({ratio:.2f}x)",
        "",
        "headline counters (enabled run):",
    ]
    for name in HEADLINE_COUNTERS:
        lines.append(f"  {name:<28} {snapshot.get(name):>10,}")
    lines.append(f"  spans recorded               {len(recorder.tracer.spans):>10,}")
    write_result("observability_overhead", "\n".join(lines))
