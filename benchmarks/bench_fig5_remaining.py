"""Figure 5 — clustering the remaining (outlier) network.

Paper reference: removing the formed clusters and re-clustering the
remaining network avoids "cluster concealing"; after the second MSC+GCP
round the outliers become sparser than after the first.
"""

from benchmarks.conftest import bench_seed, write_result
from repro.experiments.figures import figure5


def test_fig5_remaining_network(benchmark, cache):
    network = cache.network(2)

    result = benchmark.pedantic(
        lambda: figure5(network, max_size=64, rng=bench_seed()),
        rounds=1,
        iterations=1,
    )

    lines = [
        f"initial connections: {result.initial_connections}",
        f"after round 1 (MSC+GCP, clusters removed): "
        f"{result.round1_outliers} outliers ({result.round1_outlier_ratio:.1%})",
        f"after round 2 on the remaining network:    "
        f"{result.round2_outliers} outliers ({result.round2_outlier_ratio:.1%})",
    ]
    write_result("fig5_remaining_network", "\n".join(lines))

    # the second round clusters part of the remaining connections
    assert result.round2_outliers < result.round1_outliers
