"""Setup shim.

The pyproject.toml intentionally omits a ``[build-system]`` table so that
``pip install -e .`` works in fully offline environments (PEP 660 editable
installs require the ``wheel`` package, which may be unavailable without
network access).  With this shim pip falls back to the legacy
``setup.py develop`` editable path, which has no such requirement.
"""

from setuptools import setup

setup()
